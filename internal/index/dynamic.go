package index

import (
	"fmt"
	"math"

	"llmq/internal/vector"
)

// DynamicGrid is an incrementally maintained uniform grid supporting exact
// nearest-neighbour queries under the L2 norm. Unlike Grid it is built empty
// and grown point by point, and existing points may be moved in place — the
// two operations the query-driven model needs to index its prototype set,
// which both grows (a training pair outside every vigilance ball spawns a new
// prototype) and drifts (the winner of every pair moves toward it).
//
// Points are stored in one contiguous row-major matrix, so the per-cell
// candidate verification runs over flat memory with the unrolled squared-
// distance kernel. Cells are bucketed by a 64-bit hash of their integer
// coordinates rather than an exact key: a collision merely merges two
// buckets, and since every candidate is verified by its true distance the
// search stays exact — the hash only ever adds candidates, never hides one.
//
// Nearest expands cell rings around the query cell and terminates as soon as
// the ring's distance lower bound exceeds the best candidate, which makes
// the search cost independent of the total point count whenever the cell
// size is of the order of the point spacing (the prototype store uses a
// small multiple of the vigilance ρ, which is exactly the minimum spawn
// distance).
type DynamicGrid struct {
	dim      int
	cellSize float64
	flat     []float64        // n rows × dim, row-major
	keys     []uint64         // current cell hash of each point
	cells    map[uint64][]int // cell hash → point ids
	lo, hi   []int            // bounding box of occupied cell coords

	// ext maps dense internal ids to the caller's external ids when the grid
	// was populated with InsertWithID (the bounded prototype store indexes
	// only the live slots of a tombstoned row space, so grid position i is
	// slot ext[i]). nil means external == internal. Searches report, verify
	// live rows under, and tie-break by external ids, so a caller-supplied
	// id space behaves exactly like the dense one.
	ext []int32
}

// NewDynamicGrid creates an empty dynamic grid for points of the given
// dimensionality with the given cell side length.
func NewDynamicGrid(dim int, cellSize float64) (*DynamicGrid, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("%w: dimension %d", ErrDimension, dim)
	}
	if cellSize <= 0 || math.IsNaN(cellSize) || math.IsInf(cellSize, 0) {
		return nil, fmt.Errorf("index: invalid cell size %v", cellSize)
	}
	return &DynamicGrid{
		dim:      dim,
		cellSize: cellSize,
		cells:    make(map[uint64][]int),
	}, nil
}

// Len returns the number of indexed points.
func (g *DynamicGrid) Len() int { return len(g.keys) }

// Dim returns the dimensionality of the indexed points.
func (g *DynamicGrid) Dim() int { return g.dim }

func (g *DynamicGrid) coordOf(p []float64, out []int) {
	for j, v := range p {
		out[j] = int(math.Floor(v / g.cellSize))
	}
}

// coordHash mixes the integer cell coordinates into a 64-bit bucket key
// (multiply-xorshift per coordinate). Distinct cells may collide; see the
// type comment for why that is harmless.
func coordHash(coord []int) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, c := range coord {
		h = (h ^ uint64(c)) * 0xBF58476D1CE4E5B9
		h ^= h >> 29
	}
	return h
}

func (g *DynamicGrid) growBounds(coord []int) {
	if g.lo == nil {
		g.lo = append([]int(nil), coord...)
		g.hi = append([]int(nil), coord...)
		return
	}
	for j, c := range coord {
		if c < g.lo[j] {
			g.lo[j] = c
		}
		if c > g.hi[j] {
			g.hi[j] = c
		}
	}
}

// Insert adds a point and returns its id (ids are dense, in insertion order).
// A grid is populated either entirely with Insert or entirely with
// InsertWithID; mixing the two id spaces is rejected.
func (g *DynamicGrid) Insert(p []float64) (int, error) {
	if g.ext != nil {
		return 0, fmt.Errorf("index: Insert on a grid built with InsertWithID")
	}
	return g.insert(p)
}

// InsertWithID adds a point that searches will report under the caller's
// external id instead of the dense insertion index. External ids must be
// inserted in ascending order so the grid's lowest-internal-id tie-breaking
// coincides with lowest-external-id, matching a linear scan over the
// caller's id space; live-row verification (NearestStale with a non-zero
// slack) reads live.Row(ext), so the caller's chunked view must be indexed
// by the external ids. A grid built this way is a frozen snapshot: Update is
// rejected.
func (g *DynamicGrid) InsertWithID(p []float64, ext int32) (int, error) {
	if len(g.keys) > 0 && g.ext == nil {
		return 0, fmt.Errorf("index: InsertWithID on a grid built with Insert")
	}
	if n := len(g.ext); n > 0 && g.ext[n-1] >= ext {
		return 0, fmt.Errorf("index: InsertWithID ids must be strictly ascending (%d after %d)", ext, g.ext[n-1])
	}
	id, err := g.insert(p)
	if err != nil {
		return 0, err
	}
	g.ext = append(g.ext, ext)
	return id, nil
}

// extOf maps a dense internal id to the external id searches report.
func (g *DynamicGrid) extOf(id int) int {
	if g.ext == nil {
		return id
	}
	return int(g.ext[id])
}

func (g *DynamicGrid) insert(p []float64) (int, error) {
	if len(p) != g.dim {
		return 0, fmt.Errorf("%w: point dim %d, index dim %d", ErrDimension, len(p), g.dim)
	}
	id := len(g.keys)
	g.flat = append(g.flat, p...)
	var buf [8]int
	coord := gridCoordBuf(&buf, g.dim)
	g.coordOf(p, coord)
	key := coordHash(coord)
	g.keys = append(g.keys, key)
	g.cells[key] = append(g.cells[key], id)
	g.growBounds(coord)
	return id, nil
}

// Update moves the point with the given id to p, rebucketing it when the
// move crosses a cell boundary. It is the prototype-drift operation: the AVQ
// update moves the winning prototype a small step toward each absorbed
// query, which only rarely changes its cell.
func (g *DynamicGrid) Update(id int, p []float64) error {
	if g.ext != nil {
		return fmt.Errorf("index: Update on a frozen external-id grid")
	}
	if id < 0 || id >= len(g.keys) {
		return fmt.Errorf("index: update of unknown id %d (have %d points)", id, len(g.keys))
	}
	if len(p) != g.dim {
		return fmt.Errorf("%w: point dim %d, index dim %d", ErrDimension, len(p), g.dim)
	}
	copy(g.flat[id*g.dim:(id+1)*g.dim], p)
	var buf [8]int
	coord := gridCoordBuf(&buf, g.dim)
	g.coordOf(p, coord)
	key := coordHash(coord)
	old := g.keys[id]
	if key == old {
		return nil
	}
	bucket := g.cells[old]
	for i, other := range bucket {
		if other == id {
			bucket[i] = bucket[len(bucket)-1]
			bucket = bucket[:len(bucket)-1]
			break
		}
	}
	if len(bucket) == 0 {
		delete(g.cells, old)
	} else {
		g.cells[old] = bucket
	}
	g.keys[id] = key
	g.cells[key] = append(g.cells[key], id)
	g.growBounds(coord)
	return nil
}

// At returns the (live) coordinates of the point with the given id.
func (g *DynamicGrid) At(id int) []float64 {
	return g.flat[id*g.dim : (id+1)*g.dim]
}

// gridCoordBuf returns a dim-length scratch coordinate slice, backed by the
// caller's stack array when dim permits so the search paths do not allocate.
func gridCoordBuf(buf *[8]int, dim int) []int {
	if dim <= len(buf) {
		return buf[:dim]
	}
	return make([]int, dim)
}

// Nearest returns the id of the point closest to q under the L2 norm and
// the squared distance to it. Ties are broken toward the lowest id, matching
// a first-strictly-smaller linear scan over insertion order. It returns
// (-1, 0) when the grid is empty. It is NearestStale with no staleness: the
// stored rows are the live rows, no slack, no seed.
//
// The ring expansion carries a visited-cell budget proportional to the point
// count: when the cell size is badly matched to the point spacing (cells far
// smaller than the gaps, so thousands of empty rings separate the query from
// its neighbour), the search abandons the grid and answers with one flat
// scan instead. The result is identical either way; the budget only bounds
// the worst case at O(n) like the scan it falls back to.
func (g *DynamicGrid) Nearest(q []float64) (int, float64) {
	return g.NearestStale(q, 0, vector.Chunked{}, -1, 0)
}

// NearestStale returns the exact nearest point over the live rows when the
// grid's stored positions are a stale snapshot of them. live is the current
// point matrix as a chunked view, indexed by the same dense ids as the grid
// (it may hold more rows than the grid — the extra tail is simply not
// searched here); the zero Chunked means the stored rows ARE the live rows.
// slack is an upper bound on how far any point has moved from its stored
// position. The grid prunes by stale geometry widened by slack — a point's
// live distance is at least its stale distance minus slack, so a candidate
// discarded under the widened bound cannot win — and every surviving
// candidate is verified against its live row. When slack is 0 the stored
// rows are bit-identical to the live ones and the verification gather is
// skipped. An optional seed (id seed at squared live distance seedSq, or
// seed < 0 for none) initializes the running best; the caller typically
// seeds with the argmin of rows the grid does not index.
//
// Like Nearest, the ring expansion carries a visited-cell budget and falls
// back to one exact scan over the live rows (including any tail beyond the
// grid's ids) when the cell size is pathologically mismatched.
//
// On a grid populated with InsertWithID, every id in this contract — the
// seed, the ids live is indexed by, and the returned winner — is an
// external id.
func (g *DynamicGrid) NearestStale(q []float64, slack float64, live vector.Chunked, seed int, seedSq float64) (int, float64) {
	if len(q) != g.dim {
		panic(fmt.Sprintf("index: NearestStale query dim %d, index dim %d", len(q), g.dim))
	}
	staleIsLive := live.IsZero()
	best, bestSq := seed, seedSq
	if seed < 0 {
		best, bestSq = -1, math.Inf(1)
	}
	if len(g.keys) == 0 {
		if best < 0 {
			return -1, 0
		}
		return best, bestSq
	}
	var bufQC, bufLo, bufHi, bufC [8]int
	qc := gridCoordBuf(&bufQC, g.dim)
	g.coordOf(q, qc)
	maxRing := 0
	for j := 0; j < g.dim; j++ {
		if d := qc[j] - g.lo[j]; d > maxRing {
			maxRing = d
		}
		if d := g.hi[j] - qc[j]; d > maxRing {
			maxRing = d
		}
	}
	loR := gridCoordBuf(&bufLo, g.dim)
	hiR := gridCoordBuf(&bufHi, g.dim)
	coord := gridCoordBuf(&bufC, g.dim)
	budget := 2*len(g.keys) + 64
	// boundDist tightens the ring lower bound: any point in a ring-r cell
	// differs from q by at least (r-1) whole cells plus the distance from q
	// to its own cell's nearest wall, in whichever axis carries the ring
	// offset — so ring r is at least (r-1)·cellSize + boundDist away. For a
	// query that lands near its winner (the training regime), this breaks
	// the expansion after ring 0 instead of enumerating all 3^dim−1 ring-1
	// cells.
	boundDist := g.cellSize
	for j := 0; j < g.dim; j++ {
		lo := q[j] - float64(qc[j])*g.cellSize // distance to the lower wall
		if lo < boundDist {
			boundDist = lo
		}
		if hi := g.cellSize - lo; hi < boundDist {
			boundDist = hi
		}
	}
	if boundDist < 0 {
		boundDist = 0 // floating-point guard: q on a cell wall
	}
	// cutoffSq is the stale-distance bound a candidate must beat to possibly
	// win: (bestDist + slack)². It shrinks whenever the best improves.
	bestDist := math.Sqrt(bestSq)
	cutoffSq := (bestDist + slack) * (bestDist + slack)
	for r := 0; r <= maxRing; r++ {
		if best >= 0 && r >= 1 {
			// Every stale position in ring r is at least
			// (r-1)·cellSize + boundDist away, so its live position is at
			// least that minus slack.
			if lb := float64(r-1)*g.cellSize + boundDist - slack; lb > 0 && lb*lb > bestSq {
				break
			}
		}
		for j := 0; j < g.dim; j++ {
			loR[j] = qc[j] - r
			if loR[j] < g.lo[j] {
				loR[j] = g.lo[j]
			}
			hiR[j] = qc[j] + r
			if hiR[j] > g.hi[j] {
				hiR[j] = g.hi[j]
			}
			if loR[j] > hiR[j] {
				goto nextRing
			}
		}
		copy(coord, loR)
		for {
			cheb := 0
			for j := 0; j < g.dim; j++ {
				d := coord[j] - qc[j]
				if d < 0 {
					d = -d
				}
				if d > cheb {
					cheb = d
				}
			}
			if cheb == r {
				budget--
				if budget < 0 {
					if staleIsLive {
						if g.ext == nil {
							if best >= 0 {
								return vector.ArgminSqDistanceSeeded(g.flat, g.dim, q, best, bestSq)
							}
							return vector.ArgminSqDistance(g.flat, g.dim, q)
						}
						// External-id snapshot: scan the stored rows and
						// tie-break by external id, matching a linear scan
						// over the caller's id space.
						for i := 0; i < len(g.keys); i++ {
							sq := vector.SqDistanceFlat(g.flat[i*g.dim:(i+1)*g.dim], q)
							if e := int(g.ext[i]); sq < bestSq || (sq == bestSq && (best < 0 || e < best)) {
								best, bestSq = e, sq
							}
						}
						return best, bestSq
					}
					if best < 0 {
						bestSq = math.Inf(1)
					}
					return vector.ArgminSqDistanceChunkedRange(live, q, 0, best, bestSq)
				}
				for _, id := range g.cells[coordHash(coord)] {
					staleSq, within := vector.SqDistanceWithin(g.flat[id*g.dim:(id+1)*g.dim], q, cutoffSq)
					if !within {
						continue
					}
					eid := g.extOf(id)
					sq := staleSq
					if slack != 0 {
						sq = vector.SqDistanceFlat(live.Row(eid), q)
					}
					if sq < bestSq || (sq == bestSq && eid < best) {
						best, bestSq = eid, sq
						bestDist = math.Sqrt(bestSq)
						cutoffSq = (bestDist + slack) * (bestDist + slack)
					}
				}
			}
			j := 0
			for ; j < g.dim; j++ {
				coord[j]++
				if coord[j] <= hiR[j] {
					break
				}
				coord[j] = loR[j]
			}
			if j == g.dim {
				break
			}
		}
	nextRing:
		continue
	}
	return best, bestSq
}

// rangeBoxEps widens the cell box (and the verification cutoff) of Range by
// a relative margin so a point sitting exactly on the query ball's boundary
// can never be excluded by floating-point rounding of the box bounds. Range
// promises a superset of the closed ball; callers verify the precise
// predicate they care about, so the margin only ever adds candidates.
const rangeBoxEps = 1e-9

// Range appends to out the ids of every indexed point whose stored position
// lies within L2 distance r of q, and returns the extended slice. It is the
// radius-query counterpart of Nearest: the cell box covering the ball is
// enumerated and every bucketed candidate is verified by its true (stored)
// distance, so the result is exact over the grid's own positions — modulo a
// deliberate one-sided widening by rangeBoxEps, which can admit points a few
// ulps outside the ball but never lose one on it. Callers that search a
// stale snapshot widen r by their drift budget and re-verify candidates
// against live rows. When the box would visit more cells than a straight
// scan of the point set, Range verifies all points linearly instead — the
// result is identical; the budget only bounds the worst case at O(n).
//
// Two distinct cells inside the box can share a bucket through a hash
// collision, in which case their ids are appended twice; callers that sort
// the candidate list deduplicate adjacent ids.
func (g *DynamicGrid) Range(q []float64, r float64, out []int) []int {
	if len(q) != g.dim {
		panic(fmt.Sprintf("index: Range query dim %d, index dim %d", len(q), g.dim))
	}
	if len(g.keys) == 0 || r < 0 || math.IsNaN(r) {
		return out
	}
	cutoffSq := r * r
	cutoffSq += cutoffSq * rangeBoxEps
	var bufLo, bufHi, bufC [8]int
	lo := gridCoordBuf(&bufLo, g.dim)
	hi := gridCoordBuf(&bufHi, g.dim)
	coord := gridCoordBuf(&bufC, g.dim)
	budget := 2*len(g.keys) + 64
	cells := 1
	for j := 0; j < g.dim; j++ {
		rb := r + rangeBoxEps*(math.Abs(q[j])+r)
		lo[j] = int(math.Floor((q[j] - rb) / g.cellSize))
		if lo[j] < g.lo[j] {
			lo[j] = g.lo[j]
		}
		hi[j] = int(math.Floor((q[j] + rb) / g.cellSize))
		if hi[j] > g.hi[j] {
			hi[j] = g.hi[j]
		}
		if lo[j] > hi[j] {
			return out
		}
		span := hi[j] - lo[j] + 1
		if cells > budget/span+1 {
			cells = budget + 1 // saturate: the box already exceeds the budget
		} else {
			cells *= span
		}
	}
	if cells > budget {
		if g.ext != nil {
			return vector.AppendWithinIDs(g.flat, g.dim, q, cutoffSq, g.ext, out)
		}
		return vector.AppendWithin(g.flat, g.dim, q, cutoffSq, 0, out)
	}
	copy(coord, lo)
	for {
		for _, id := range g.cells[coordHash(coord)] {
			if _, within := vector.SqDistanceWithin(g.flat[id*g.dim:(id+1)*g.dim], q, cutoffSq); within {
				out = append(out, g.extOf(id))
			}
		}
		j := 0
		for ; j < g.dim; j++ {
			coord[j]++
			if coord[j] <= hi[j] {
				break
			}
			coord[j] = lo[j]
		}
		if j == g.dim {
			return out
		}
	}
}
