package index

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"llmq/internal/vector"
)

// sparseRows builds a sparse slot space: nSlots chunked rows of which a
// random subset are live, the rest masked tombstones. Returns the chunked
// view, the live slot ids ascending, and the compact live matrix.
func sparseRows(rng *rand.Rand, dim, nSlots int) (vector.Chunked, []int32, []float64) {
	flat := make([]float64, nSlots*dim)
	var ids []int32
	var liveFlat []float64
	for s := 0; s < nSlots; s++ {
		row := flat[s*dim : (s+1)*dim]
		if rng.Float64() < 0.35 {
			vector.MaskRow(row)
			continue
		}
		for j := range row {
			row[j] = rng.Float64()
		}
		ids = append(ids, int32(s))
		liveFlat = append(liveFlat, row...)
	}
	return vector.ChunkedFromFlat(flat, dim), ids, liveFlat
}

// nearestRef is the reference nearest over the live slots: first strict
// minimum in ascending slot order.
func nearestRef(live vector.Chunked, ids []int32, q []float64) (int, float64) {
	best, bestSq := -1, math.Inf(1)
	for _, id := range ids {
		if sq := vector.SqDistanceFlat(live.Row(int(id)), q); sq < bestSq {
			best, bestSq = int(id), sq
		}
	}
	return best, bestSq
}

// TestDynamicGridExternalIDs verifies that a grid populated with
// InsertWithID answers NearestStale and Range in the external (slot) id
// space exactly as a linear scan over the live slots does — including under
// a forced visited-cell budget fallback.
func TestDynamicGridExternalIDs(t *testing.T) {
	for _, dim := range []int{2, 3} {
		rng := rand.New(rand.NewSource(int64(900 + dim)))
		live, ids, liveFlat := sparseRows(rng, dim, 400)
		if len(ids) < 10 {
			t.Fatalf("dim %d: degenerate live set", dim)
		}
		g, err := NewDynamicGrid(dim, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		for i, id := range ids {
			if _, err := g.InsertWithID(liveFlat[i*dim:(i+1)*dim], id); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := g.Insert(liveFlat[:dim]); err == nil {
			t.Fatal("Insert on an external-id grid should fail")
		}
		if err := g.Update(0, liveFlat[:dim]); err == nil {
			t.Fatal("Update on an external-id grid should fail")
		}
		for trial := 0; trial < 300; trial++ {
			q := make([]float64, dim)
			for j := range q {
				q[j] = rng.Float64()*1.2 - 0.1
			}
			wantID, wantSq := nearestRef(live, ids, q)
			// slack 0 (stored rows are the live rows) and a tiny positive
			// slack (forces the live-row verification path) must agree.
			for _, slack := range []float64{0, 1e-12} {
				gotID, gotSq := g.NearestStale(q, slack, live, -1, 0)
				if gotID != wantID || math.Abs(gotSq-wantSq) > 1e-12*(1+wantSq) {
					t.Fatalf("dim %d slack %v: NearestStale = (%d, %v), reference = (%d, %v)",
						dim, slack, gotID, gotSq, wantID, wantSq)
				}
			}
			// Nearest (the no-staleness entry point) must report external
			// ids too — the stored rows ARE the live rows here.
			if gotID, gotSq := g.Nearest(q); gotID != wantID || math.Abs(gotSq-wantSq) > 1e-12*(1+wantSq) {
				t.Fatalf("dim %d: Nearest = (%d, %v), reference = (%d, %v)", dim, gotID, gotSq, wantID, wantSq)
			}
			r := 0.05 + 0.3*rng.Float64()
			got := append([]int(nil), g.Range(q, r, nil)...)
			sort.Ints(got)
			uniq := got[:0]
			for i, id := range got {
				if i == 0 || id != got[i-1] {
					uniq = append(uniq, id)
				}
			}
			var want []int
			for _, id := range ids {
				if vector.SqDistanceFlat(live.Row(int(id)), q) <= r*r {
					want = append(want, int(id))
				}
			}
			if len(uniq) < len(want) {
				t.Fatalf("dim %d: Range missed ids: got %v want %v", dim, uniq, want)
			}
			seen := map[int]bool{}
			for _, id := range uniq {
				seen[id] = true
			}
			for _, id := range want {
				if !seen[id] {
					t.Fatalf("dim %d: Range missing live slot %d", dim, id)
				}
			}
		}
	}
}

// TestBulkKDTreeExternalIDs verifies NewBulkKDTreeIDs: NearestStale and
// Range report slot ids and verify against the slot-indexed live view, with
// and without drift slack, matching the linear-scan reference.
func TestBulkKDTreeExternalIDs(t *testing.T) {
	for _, dim := range []int{5, 8} {
		rng := rand.New(rand.NewSource(int64(950 + dim)))
		live, ids, liveFlat := sparseRows(rng, dim, 600)
		tr, err := NewBulkKDTreeIDs(liveFlat, dim, ids)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Len() != len(ids) {
			t.Fatalf("dim %d: tree holds %d rows, want %d", dim, tr.Len(), len(ids))
		}
		var stack []int32
		for trial := 0; trial < 300; trial++ {
			q := make([]float64, dim)
			for j := range q {
				q[j] = rng.Float64()*1.2 - 0.1
			}
			wantID, wantSq := nearestRef(live, ids, q)
			for _, slack := range []float64{0, 1e-12} {
				var gotID int
				var gotSq float64
				gotID, gotSq, stack = tr.NearestStale(q, slack, live, -1, 0, stack)
				if gotSq != wantSq && math.Abs(gotSq-wantSq) > 1e-12*(1+wantSq) {
					t.Fatalf("dim %d slack %v: NearestStale = (%d, %v), reference = (%d, %v)",
						dim, slack, gotID, gotSq, wantID, wantSq)
				}
			}
			r := 0.2 + 0.4*rng.Float64()
			var got []int
			got, stack = tr.Range(q, r, nil, stack, 0)
			seen := map[int]bool{}
			for _, id := range got {
				if seen[id] {
					t.Fatalf("dim %d: duplicate id %d from tree Range", dim, id)
				}
				seen[id] = true
			}
			for _, id := range ids {
				if vector.SqDistanceFlat(live.Row(int(id)), q) <= r*r && !seen[int(id)] {
					t.Fatalf("dim %d: tree Range missing live slot %d", dim, id)
				}
			}
		}
		if _, err := NewBulkKDTreeIDs(liveFlat, dim, ids[:len(ids)-1]); err == nil {
			t.Fatal("short id table should fail")
		}
	}
}
