package index

import (
	"math"
	"math/rand"
	"testing"
)

func randPts(rng *rand.Rand, n, dim int, scale float64) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		for j := range p {
			p[j] = scale * (rng.Float64()*2 - 1)
		}
		pts[i] = p
	}
	return pts
}

func TestDynamicGridNearestMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, dim := range []int{1, 2, 3, 4} {
		for _, n := range []int{1, 2, 17, 300} {
			pts := randPts(rng, n, dim, 2)
			g, err := NewDynamicGrid(dim, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range pts {
				if _, err := g.Insert(p); err != nil {
					t.Fatal(err)
				}
			}
			lin, err := NewLinear(pts)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 50; trial++ {
				q := randPts(rng, 1, dim, 2.5)[0]
				gotID, gotSq := g.Nearest(q)
				wantID, wantSq := lin.Nearest(q)
				if gotID != wantID && math.Abs(gotSq-wantSq) > 1e-12 {
					t.Fatalf("dim=%d n=%d: grid nearest %d (sq %v), linear %d (sq %v)",
						dim, n, gotID, gotSq, wantID, wantSq)
				}
			}
		}
	}
}

func TestDynamicGridUpdateDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const dim, n = 3, 120
	pts := randPts(rng, n, dim, 1)
	g, err := NewDynamicGrid(dim, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if _, err := g.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	// Drift every point repeatedly (small steps and occasional jumps that
	// cross cell boundaries), re-verifying exactness after each sweep.
	for sweep := 0; sweep < 5; sweep++ {
		for id := 0; id < n; id++ {
			step := 0.05
			if rng.Intn(10) == 0 {
				step = 1.5 // jump to another cell
			}
			for j := 0; j < dim; j++ {
				pts[id][j] += step * (rng.Float64()*2 - 1)
			}
			if err := g.Update(id, pts[id]); err != nil {
				t.Fatal(err)
			}
		}
		lin, err := NewLinear(pts)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 40; trial++ {
			q := randPts(rng, 1, dim, 2)[0]
			gotID, gotSq := g.Nearest(q)
			wantID, wantSq := lin.Nearest(q)
			if gotID != wantID && math.Abs(gotSq-wantSq) > 1e-12 {
				t.Fatalf("sweep %d: grid nearest %d (sq %v), linear %d (sq %v)",
					sweep, gotID, gotSq, wantID, wantSq)
			}
		}
	}
}

func TestDynamicGridEdgeCases(t *testing.T) {
	if _, err := NewDynamicGrid(0, 1); err == nil {
		t.Error("dim 0 should fail")
	}
	if _, err := NewDynamicGrid(2, 0); err == nil {
		t.Error("cell size 0 should fail")
	}
	if _, err := NewDynamicGrid(2, math.NaN()); err == nil {
		t.Error("NaN cell size should fail")
	}
	g, err := NewDynamicGrid(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if id, _ := g.Nearest([]float64{0, 0}); id != -1 {
		t.Errorf("empty grid nearest: got %d, want -1", id)
	}
	if _, err := g.Insert([]float64{1}); err == nil {
		t.Error("wrong-dim insert should fail")
	}
	if err := g.Update(0, []float64{0, 0}); err == nil {
		t.Error("update of unknown id should fail")
	}
	id, err := g.Insert([]float64{0.1, 0.2})
	if err != nil || id != 0 {
		t.Fatalf("insert: id=%d err=%v", id, err)
	}
	if err := g.Update(0, []float64{9}); err == nil {
		t.Error("wrong-dim update should fail")
	}
	if got := g.At(0); got[0] != 0.1 || got[1] != 0.2 {
		t.Errorf("At(0) = %v", got)
	}
	if g.Len() != 1 || g.Dim() != 2 {
		t.Errorf("Len/Dim = %d/%d", g.Len(), g.Dim())
	}
}

func TestKDTreeNearestMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, dim := range []int{1, 2, 3, 5, 9} {
		pts := randPts(rng, 400, dim, 1)
		tree, err := NewKDTree(pts)
		if err != nil {
			t.Fatal(err)
		}
		lin, err := NewLinear(pts)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 60; trial++ {
			q := randPts(rng, 1, dim, 1.2)[0]
			gotID, gotSq := tree.Nearest(q)
			wantID, wantSq := lin.Nearest(q)
			if gotID != wantID && math.Abs(gotSq-wantSq) > 1e-12 {
				t.Fatalf("dim=%d: kd nearest %d (sq %v), linear %d (sq %v)",
					dim, gotID, gotSq, wantID, wantSq)
			}
		}
	}
}

// TestDynamicGridPathologicalCellSize covers the budgeted fallback: with
// cells orders of magnitude smaller than the point spacing, the ring
// expansion would have to cross thousands of empty rings, so Nearest must
// abandon the grid within its visited-cell budget and still answer exactly.
func TestDynamicGridPathologicalCellSize(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const dim, n = 3, 200
	pts := randPts(rng, n, dim, 1)
	g, err := NewDynamicGrid(dim, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if _, err := g.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	lin, err := NewLinear(pts)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		q := randPts(rng, 1, dim, 1.5)[0]
		gotID, gotSq := g.Nearest(q)
		wantID, wantSq := lin.Nearest(q)
		if gotID != wantID && math.Abs(gotSq-wantSq) > 1e-12 {
			t.Fatalf("fallback: grid nearest %d (sq %v), linear %d (sq %v)", gotID, gotSq, wantID, wantSq)
		}
	}
}

func TestDynamicGridTieBreaksLowID(t *testing.T) {
	g, err := NewDynamicGrid(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Two points equidistant from the query, in different cells.
	if _, err := g.Insert([]float64{1, 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Insert([]float64{-1, 0}); err != nil {
		t.Fatal(err)
	}
	if id, _ := g.Nearest([]float64{0, 0}); id != 0 {
		t.Errorf("tie: got id %d, want 0", id)
	}
}
