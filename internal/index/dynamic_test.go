package index

import (
	"math"
	"math/rand"
	"testing"

	"llmq/internal/vector"
)

func randPts(rng *rand.Rand, n, dim int, scale float64) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		for j := range p {
			p[j] = scale * (rng.Float64()*2 - 1)
		}
		pts[i] = p
	}
	return pts
}

func TestDynamicGridNearestMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, dim := range []int{1, 2, 3, 4} {
		for _, n := range []int{1, 2, 17, 300} {
			pts := randPts(rng, n, dim, 2)
			g, err := NewDynamicGrid(dim, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range pts {
				if _, err := g.Insert(p); err != nil {
					t.Fatal(err)
				}
			}
			lin, err := NewLinear(pts)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 50; trial++ {
				q := randPts(rng, 1, dim, 2.5)[0]
				gotID, gotSq := g.Nearest(q)
				wantID, wantSq := lin.Nearest(q)
				if gotID != wantID && math.Abs(gotSq-wantSq) > 1e-12 {
					t.Fatalf("dim=%d n=%d: grid nearest %d (sq %v), linear %d (sq %v)",
						dim, n, gotID, gotSq, wantID, wantSq)
				}
			}
		}
	}
}

func TestDynamicGridUpdateDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const dim, n = 3, 120
	pts := randPts(rng, n, dim, 1)
	g, err := NewDynamicGrid(dim, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if _, err := g.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	// Drift every point repeatedly (small steps and occasional jumps that
	// cross cell boundaries), re-verifying exactness after each sweep.
	for sweep := 0; sweep < 5; sweep++ {
		for id := 0; id < n; id++ {
			step := 0.05
			if rng.Intn(10) == 0 {
				step = 1.5 // jump to another cell
			}
			for j := 0; j < dim; j++ {
				pts[id][j] += step * (rng.Float64()*2 - 1)
			}
			if err := g.Update(id, pts[id]); err != nil {
				t.Fatal(err)
			}
		}
		lin, err := NewLinear(pts)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 40; trial++ {
			q := randPts(rng, 1, dim, 2)[0]
			gotID, gotSq := g.Nearest(q)
			wantID, wantSq := lin.Nearest(q)
			if gotID != wantID && math.Abs(gotSq-wantSq) > 1e-12 {
				t.Fatalf("sweep %d: grid nearest %d (sq %v), linear %d (sq %v)",
					sweep, gotID, gotSq, wantID, wantSq)
			}
		}
	}
}

func TestDynamicGridEdgeCases(t *testing.T) {
	if _, err := NewDynamicGrid(0, 1); err == nil {
		t.Error("dim 0 should fail")
	}
	if _, err := NewDynamicGrid(2, 0); err == nil {
		t.Error("cell size 0 should fail")
	}
	if _, err := NewDynamicGrid(2, math.NaN()); err == nil {
		t.Error("NaN cell size should fail")
	}
	g, err := NewDynamicGrid(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if id, _ := g.Nearest([]float64{0, 0}); id != -1 {
		t.Errorf("empty grid nearest: got %d, want -1", id)
	}
	if _, err := g.Insert([]float64{1}); err == nil {
		t.Error("wrong-dim insert should fail")
	}
	if err := g.Update(0, []float64{0, 0}); err == nil {
		t.Error("update of unknown id should fail")
	}
	id, err := g.Insert([]float64{0.1, 0.2})
	if err != nil || id != 0 {
		t.Fatalf("insert: id=%d err=%v", id, err)
	}
	if err := g.Update(0, []float64{9}); err == nil {
		t.Error("wrong-dim update should fail")
	}
	if got := g.At(0); got[0] != 0.1 || got[1] != 0.2 {
		t.Errorf("At(0) = %v", got)
	}
	if g.Len() != 1 || g.Dim() != 2 {
		t.Errorf("Len/Dim = %d/%d", g.Len(), g.Dim())
	}
}

func TestKDTreeNearestMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, dim := range []int{1, 2, 3, 5, 9} {
		pts := randPts(rng, 400, dim, 1)
		tree, err := NewKDTree(pts)
		if err != nil {
			t.Fatal(err)
		}
		lin, err := NewLinear(pts)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 60; trial++ {
			q := randPts(rng, 1, dim, 1.2)[0]
			gotID, gotSq := tree.Nearest(q)
			wantID, wantSq := lin.Nearest(q)
			if gotID != wantID && math.Abs(gotSq-wantSq) > 1e-12 {
				t.Fatalf("dim=%d: kd nearest %d (sq %v), linear %d (sq %v)",
					dim, gotID, gotSq, wantID, wantSq)
			}
		}
	}
}

// TestDynamicGridPathologicalCellSize covers the budgeted fallback: with
// cells orders of magnitude smaller than the point spacing, the ring
// expansion would have to cross thousands of empty rings, so Nearest must
// abandon the grid within its visited-cell budget and still answer exactly.
func TestDynamicGridPathologicalCellSize(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const dim, n = 3, 200
	pts := randPts(rng, n, dim, 1)
	g, err := NewDynamicGrid(dim, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if _, err := g.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	lin, err := NewLinear(pts)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		q := randPts(rng, 1, dim, 1.5)[0]
		gotID, gotSq := g.Nearest(q)
		wantID, wantSq := lin.Nearest(q)
		if gotID != wantID && math.Abs(gotSq-wantSq) > 1e-12 {
			t.Fatalf("fallback: grid nearest %d (sq %v), linear %d (sq %v)", gotID, gotSq, wantID, wantSq)
		}
	}
}

func TestDynamicGridTieBreaksLowID(t *testing.T) {
	g, err := NewDynamicGrid(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Two points equidistant from the query, in different cells.
	if _, err := g.Insert([]float64{1, 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Insert([]float64{-1, 0}); err != nil {
		t.Fatal(err)
	}
	if id, _ := g.Nearest([]float64{0, 0}); id != 0 {
		t.Errorf("tie: got id %d, want 0", id)
	}
}

// TestDynamicGridRangeMatchesLinear checks the radius-query contract on
// random point sets: Range must return every id within r of the query (a
// point on the ball's boundary included), and nothing farther than the
// documented rounding widening. Duplicates from colliding cells are allowed,
// so the comparison is on the deduplicated id set.
func TestDynamicGridRangeMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dim := range []int{1, 2, 3, 4} {
		for _, n := range []int{1, 40, 500} {
			pts := randPts(rng, n, dim, 2)
			g, err := NewDynamicGrid(dim, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range pts {
				if _, err := g.Insert(p); err != nil {
					t.Fatal(err)
				}
			}
			for trial := 0; trial < 60; trial++ {
				q := randPts(rng, 1, dim, 2.5)[0]
				r := rng.Float64() * 2.5 // from point-free to most-of-the-set
				got := map[int]bool{}
				for _, id := range g.Range(q, r, nil) {
					got[id] = true
				}
				for id, p := range pts {
					var sq float64
					for j := range p {
						d := p[j] - q[j]
						sq += d * d
					}
					if sq <= r*r && !got[id] {
						t.Fatalf("dim=%d n=%d r=%v: Range missed id %d at sq %v", dim, n, r, id, sq)
					}
					if got[id] && sq > r*r*(1+2*rangeBoxEps)+1e-18 {
						t.Fatalf("dim=%d n=%d r=%v: Range returned id %d at sq %v > r²", dim, n, r, id, sq)
					}
				}
			}
		}
	}
}

// TestDynamicGridRangeEdgeCases exercises empty grids, negative and NaN
// radii, zero radius on an exact hit, and the linear fallback when the box
// dwarfs the point set.
func TestDynamicGridRangeEdgeCases(t *testing.T) {
	g, err := NewDynamicGrid(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if out := g.Range([]float64{0, 0}, 1, nil); len(out) != 0 {
		t.Fatalf("empty grid returned %v", out)
	}
	if _, err := g.Insert([]float64{0.25, 0.25}); err != nil {
		t.Fatal(err)
	}
	if out := g.Range([]float64{0.25, 0.25}, 0, nil); len(out) != 1 || out[0] != 0 {
		t.Fatalf("zero-radius exact hit: %v", out)
	}
	if out := g.Range([]float64{0, 0}, -1, nil); len(out) != 0 {
		t.Fatalf("negative radius returned %v", out)
	}
	if out := g.Range([]float64{0, 0}, math.NaN(), nil); len(out) != 0 {
		t.Fatalf("NaN radius returned %v", out)
	}
	// A huge radius forces the box budget fallback; the single point is found.
	if out := g.Range([]float64{0, 0}, 1e9, nil); len(out) != 1 || out[0] != 0 {
		t.Fatalf("huge radius: %v", out)
	}
}

// TestDynamicGridNearestStale verifies the drift-slack search: the grid
// holds stale positions, every live point has moved at most slack from its
// stored row, and NearestStale must still return the exact argmin over the
// live rows — including when the answer arrives via the seed.
func TestDynamicGridNearestStale(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, dim := range []int{1, 2, 3, 4} {
		for _, n := range []int{1, 25, 400} {
			stale := randPts(rng, n, dim, 2)
			g, err := NewDynamicGrid(dim, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range stale {
				if _, err := g.Insert(p); err != nil {
					t.Fatal(err)
				}
			}
			for _, slack := range []float64{0, 0.05, 0.4} {
				// Perturb each live row by at most slack from its stale row.
				live := make([]float64, n*dim)
				for i, p := range stale {
					move := slack * rng.Float64() / math.Sqrt(float64(dim))
					for j := range p {
						live[i*dim+j] = p[j] + move*(rng.Float64()*2-1)
					}
				}
				for trial := 0; trial < 60; trial++ {
					q := randPts(rng, 1, dim, 2.5)[0]
					gotID, gotSq := g.NearestStale(q, slack, vector.ChunkedFromFlat(live, dim), -1, 0)
					wantID, wantSq := -1, math.Inf(1)
					for i := 0; i < n; i++ {
						var sq float64
						for j := 0; j < dim; j++ {
							d := live[i*dim+j] - q[j]
							sq += d * d
						}
						if sq < wantSq {
							wantID, wantSq = i, sq
						}
					}
					if gotID != wantID && math.Abs(gotSq-wantSq) > 1e-12 {
						t.Fatalf("dim=%d n=%d slack=%v: NearestStale %d (sq %v), linear %d (sq %v)",
							dim, n, slack, gotID, gotSq, wantID, wantSq)
					}
					// A better-than-everything seed must win; seed ids may
					// point past the grid's rows (an un-indexed tail).
					if seedID, seedSq := g.NearestStale(q, slack, vector.ChunkedFromFlat(live, dim), n+3, wantSq/2); seedID != n+3 || seedSq != wantSq/2 {
						t.Fatalf("dim=%d n=%d slack=%v: seed lost: got (%d, %v)", dim, n, slack, seedID, seedSq)
					}
				}
			}
		}
	}
}
