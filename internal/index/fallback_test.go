package index

import (
	"math/rand"
	"sort"
	"testing"

	"llmq/internal/vector"
)

// buildMismatchedGrid builds a DynamicGrid whose cell size is pathologically
// mismatched to the point spacing: points thousands of empty cells apart, so
// ring expansion burns its visited-cell budget long before reaching a
// neighbour. This is the regime the grid's flat-scan fallback exists for.
func buildMismatchedGrid(t *testing.T, rng *rand.Rand, n int) (*DynamicGrid, []float64) {
	t.Helper()
	const dim = 2
	g, err := NewDynamicGrid(dim, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	flat := make([]float64, 0, n*dim)
	for i := 0; i < n; i++ {
		// Points scattered across ~1e5 cells per axis.
		p := []float64{1e5 * rng.Float64(), 1e5 * rng.Float64()}
		if _, err := g.Insert(p); err != nil {
			t.Fatal(err)
		}
		flat = append(flat, p...)
	}
	return g, flat
}

// TestDynamicGridNearestBudgetFallback forces the ring expansion's
// visited-cell budget (2n+64 cells, versus ~1e5 empty rings between
// neighbours) and asserts the flat-scan fallback still returns the exact
// linear-scan answer — both on the stored rows and through the stale/live
// verification path.
func TestDynamicGridNearestBudgetFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 12
	g, flat := buildMismatchedGrid(t, rng, n)
	live := vector.ChunkedFromFlat(flat, 2)
	for trial := 0; trial < 100; trial++ {
		q := []float64{1e5 * rng.Float64(), 1e5 * rng.Float64()}
		want, wantSq := bruteNearest(flat, 2, q)
		got, gotSq := g.Nearest(q)
		if got != want && !sqClose(gotSq, wantSq) {
			t.Fatalf("trial %d: Nearest (%d, %v), linear scan (%d, %v)", trial, got, gotSq, want, wantSq)
		}
		got, gotSq = g.NearestStale(q, 0.5, live, -1, 0)
		if got != want && !sqClose(gotSq, wantSq) {
			t.Fatalf("trial %d: NearestStale (%d, %v), linear scan (%d, %v)", trial, got, gotSq, want, wantSq)
		}
	}
}

// TestDynamicGridRangeBudgetFallback forces Range's cell-box budget (a
// query ball covering more cells than points) and asserts the linear-branch
// answer matches the brute-force scan.
func TestDynamicGridRangeBudgetFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const n = 12
	g, flat := buildMismatchedGrid(t, rng, n)
	for trial := 0; trial < 100; trial++ {
		q := []float64{1e5 * rng.Float64(), 1e5 * rng.Float64()}
		r := 5e4 * rng.Float64() // covers up to ~1e9 cells, versus 12 points
		got := g.Range(q, r, nil)
		sort.Ints(got)
		want := bruteRange(flat, 2, q, r)
		if len(got) < len(want) {
			t.Fatalf("trial %d: Range returned %d ids, linear scan %d", trial, len(got), len(want))
		}
		member := make(map[int]bool, len(got))
		for _, id := range got {
			member[id] = true
		}
		for _, id := range want {
			if !member[id] {
				t.Fatalf("trial %d: Range missed id %d within r=%v", trial, id, r)
			}
		}
		for _, id := range got {
			sq := vector.SqDistanceFlat(flat[id*2:(id+1)*2], q)
			if sq > r*r*(1+2*rangeBoxEps) {
				t.Fatalf("trial %d: Range reported id %d at sq %v, r²=%v", trial, id, sq, r*r)
			}
		}
	}
}
