package index

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
)

func randomPoints(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = make([]float64, dim)
		for j := range pts[i] {
			pts[i][j] = rng.Float64()*2 - 1
		}
	}
	return pts
}

func sortedCopy(ids []int) []int {
	out := append([]int(nil), ids...)
	sort.Ints(out)
	return out
}

func sameIDs(a, b []int) bool {
	as, bs := sortedCopy(a), sortedCopy(b)
	if len(as) != len(bs) {
		return false
	}
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func TestConstructionErrors(t *testing.T) {
	if _, err := NewLinear(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("linear empty err = %v", err)
	}
	if _, err := NewGrid(nil, 1); !errors.Is(err, ErrEmpty) {
		t.Errorf("grid empty err = %v", err)
	}
	if _, err := NewKDTree(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("kdtree empty err = %v", err)
	}
	ragged := [][]float64{{1, 2}, {1}}
	if _, err := NewLinear(ragged); !errors.Is(err, ErrDimension) {
		t.Errorf("linear ragged err = %v", err)
	}
	if _, err := NewGrid(ragged, 1); !errors.Is(err, ErrDimension) {
		t.Errorf("grid ragged err = %v", err)
	}
	if _, err := NewKDTree(ragged); !errors.Is(err, ErrDimension) {
		t.Errorf("kdtree ragged err = %v", err)
	}
	pts := [][]float64{{1, 2}}
	if _, err := NewGrid(pts, 0); err == nil {
		t.Error("zero cell size accepted")
	}
	if _, err := NewGrid(pts, math.NaN()); err == nil {
		t.Error("NaN cell size accepted")
	}
}

func TestQueryValidation(t *testing.T) {
	pts := randomPoints(10, 3, 1)
	lin, _ := NewLinear(pts)
	grid, _ := NewGrid(pts, 0.5)
	kd, _ := NewKDTree(pts)
	for name, idx := range map[string]SpatialIndex{"linear": lin, "grid": grid, "kd": kd} {
		if _, err := idx.Radius([]float64{0, 0}, 1, 2); !errors.Is(err, ErrDimension) {
			t.Errorf("%s: wrong-dim query err = %v", name, err)
		}
		if _, err := idx.Radius([]float64{0, 0, 0}, -1, 2); !errors.Is(err, ErrRadius) {
			t.Errorf("%s: negative radius err = %v", name, err)
		}
		if idx.Len() != 10 || idx.Dim() != 3 {
			t.Errorf("%s: Len/Dim = %d/%d", name, idx.Len(), idx.Dim())
		}
	}
}

func TestRadiusKnownConfiguration(t *testing.T) {
	// Points on a line; centre at origin with radius 1.5 must catch ids 0..3.
	pts := [][]float64{{-1.5, 0}, {-1, 0}, {0, 0}, {1.5, 0}, {2, 0}, {5, 5}}
	want := []int{0, 1, 2, 3}
	lin, _ := NewLinear(pts)
	grid, _ := NewGrid(pts, 1)
	kd, _ := NewKDTree(pts)
	for name, idx := range map[string]SpatialIndex{"linear": lin, "grid": grid, "kd": kd} {
		ids, err := idx.Radius([]float64{0, 0}, 1.5, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !sameIDs(ids, want) {
			t.Errorf("%s: ids = %v, want %v", name, sortedCopy(ids), want)
		}
	}
}

func TestRadiusBoundaryInclusive(t *testing.T) {
	pts := [][]float64{{1, 0}, {0, 1}, {2, 0}}
	for name, build := range map[string]func() SpatialIndex{
		"linear": func() SpatialIndex { i, _ := NewLinear(pts); return i },
		"grid":   func() SpatialIndex { i, _ := NewGrid(pts, 0.5); return i },
		"kd":     func() SpatialIndex { i, _ := NewKDTree(pts); return i },
	} {
		idx := build()
		ids, err := idx.Radius([]float64{0, 0}, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(ids, []int{0, 1}) {
			t.Errorf("%s: points at exactly distance θ must be included; got %v", name, sortedCopy(ids))
		}
	}
}

func TestGridAndKDTreeAgreeWithLinear(t *testing.T) {
	for _, dim := range []int{1, 2, 3, 5} {
		pts := randomPoints(800, dim, int64(dim))
		lin, err := NewLinear(pts)
		if err != nil {
			t.Fatal(err)
		}
		grid, err := NewGrid(pts, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		kd, err := NewKDTree(pts)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(100 + dim)))
		for _, p := range []float64{1, 2, math.Inf(1)} {
			for q := 0; q < 25; q++ {
				center := make([]float64, dim)
				for j := range center {
					center[j] = rng.Float64()*2 - 1
				}
				radius := rng.Float64() * 0.6
				want, err := lin.Radius(center, radius, p)
				if err != nil {
					t.Fatal(err)
				}
				gotGrid, err := grid.Radius(center, radius, p)
				if err != nil {
					t.Fatal(err)
				}
				gotKD, err := kd.Radius(center, radius, p)
				if err != nil {
					t.Fatal(err)
				}
				if !sameIDs(want, gotGrid) {
					t.Fatalf("dim=%d p=%v: grid disagrees with linear (%d vs %d matches)", dim, p, len(gotGrid), len(want))
				}
				if !sameIDs(want, gotKD) {
					t.Fatalf("dim=%d p=%v: kd-tree disagrees with linear (%d vs %d matches)", dim, p, len(gotKD), len(want))
				}
			}
		}
	}
}

func TestZeroRadius(t *testing.T) {
	pts := [][]float64{{0.5, 0.5}, {0.25, 0.25}}
	lin, _ := NewLinear(pts)
	grid, _ := NewGrid(pts, 0.1)
	kd, _ := NewKDTree(pts)
	for name, idx := range map[string]SpatialIndex{"linear": lin, "grid": grid, "kd": kd} {
		ids, err := idx.Radius([]float64{0.5, 0.5}, 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(ids, []int{0}) {
			t.Errorf("%s: zero-radius query = %v", name, ids)
		}
		none, _ := idx.Radius([]float64{0.9, 0.9}, 0, 2)
		if len(none) != 0 {
			t.Errorf("%s: expected no matches, got %v", name, none)
		}
	}
}

func TestLargeRadiusReturnsAll(t *testing.T) {
	pts := randomPoints(200, 3, 9)
	for name, build := range map[string]func() (SpatialIndex, error){
		"linear": func() (SpatialIndex, error) { return NewLinear(pts) },
		"grid":   func() (SpatialIndex, error) { i, err := NewGrid(pts, 0.3); return i, err },
		"kd":     func() (SpatialIndex, error) { return NewKDTree(pts) },
	} {
		idx, err := build()
		if err != nil {
			t.Fatal(err)
		}
		ids, err := idx.Radius([]float64{0, 0, 0}, 100, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != len(pts) {
			t.Errorf("%s: huge radius returned %d of %d points", name, len(ids), len(pts))
		}
	}
}

func TestCountInRadius(t *testing.T) {
	pts := [][]float64{{0}, {1}, {2}, {3}}
	lin, _ := NewLinear(pts)
	n, err := CountInRadius(lin, []float64{0}, 1.5, 2)
	if err != nil || n != 2 {
		t.Errorf("CountInRadius = %d, %v", n, err)
	}
	if _, err := CountInRadius(lin, []float64{0, 0}, 1, 2); err == nil {
		t.Error("dimension error not propagated")
	}
}

func TestDuplicatePoints(t *testing.T) {
	pts := [][]float64{{1, 1}, {1, 1}, {1, 1}, {2, 2}}
	for name, build := range map[string]func() (SpatialIndex, error){
		"linear": func() (SpatialIndex, error) { return NewLinear(pts) },
		"grid":   func() (SpatialIndex, error) { i, err := NewGrid(pts, 0.5); return i, err },
		"kd":     func() (SpatialIndex, error) { return NewKDTree(pts) },
	} {
		idx, err := build()
		if err != nil {
			t.Fatal(err)
		}
		ids, err := idx.Radius([]float64{1, 1}, 0.1, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != 3 {
			t.Errorf("%s: duplicates must all be returned, got %v", name, ids)
		}
	}
}

func TestSinglePointIndex(t *testing.T) {
	pts := [][]float64{{0.3, 0.7}}
	kd, err := NewKDTree(pts)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := kd.Radius([]float64{0.3, 0.7}, 0.01, 2)
	if err != nil || len(ids) != 1 {
		t.Errorf("single point query = %v, %v", ids, err)
	}
}

func BenchmarkRadiusLinear10k(b *testing.B) { benchRadius(b, "linear") }
func BenchmarkRadiusGrid10k(b *testing.B)   { benchRadius(b, "grid") }
func BenchmarkRadiusKDTree10k(b *testing.B) { benchRadius(b, "kd") }

func benchRadius(b *testing.B, kind string) {
	pts := randomPoints(10000, 3, 42)
	var idx SpatialIndex
	var err error
	switch kind {
	case "linear":
		idx, err = NewLinear(pts)
	case "grid":
		idx, err = NewGrid(pts, 0.2)
	case "kd":
		idx, err = NewKDTree(pts)
	}
	if err != nil {
		b.Fatal(err)
	}
	center := []float64{0, 0, 0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.Radius(center, 0.2, 2); err != nil {
			b.Fatal(err)
		}
	}
}
