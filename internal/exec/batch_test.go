package exec

import (
	"errors"
	"math/rand"
	"testing"

	"llmq/internal/synth"
)

func TestMeanBatchMatchesSequential(t *testing.T) {
	tab, _ := loadTable(t, 5000, 2, synth.SensorSurrogate, 0.01, 21)
	e, err := NewExecutor(tab, []string{"x1", "x2"}, "u", nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	qs := make([]RadiusQuery, 100)
	for i := range qs {
		// Include some radii small enough to select nothing.
		qs[i] = RadiusQuery{
			Center: []float64{rng.Float64(), rng.Float64()},
			Theta:  0.002 + 0.15*rng.Float64(),
		}
	}
	results, errs := e.MeanBatch(qs)
	if len(results) != len(qs) || len(errs) != len(qs) {
		t.Fatalf("batch sizes: %d results, %d errs", len(results), len(errs))
	}
	sawEmpty, sawAnswer := false, false
	for i, q := range qs {
		want, wantErr := e.Mean(q)
		if (errs[i] == nil) != (wantErr == nil) {
			t.Fatalf("query %d: batch err %v, sequential err %v", i, errs[i], wantErr)
		}
		if wantErr != nil {
			if !errors.Is(errs[i], ErrEmptySubspace) {
				t.Fatalf("query %d: unexpected error %v", i, errs[i])
			}
			sawEmpty = true
			continue
		}
		sawAnswer = true
		if results[i].Mean != want.Mean || results[i].Count != want.Count {
			t.Fatalf("query %d: batch (%v, %d), sequential (%v, %d)",
				i, results[i].Mean, results[i].Count, want.Mean, want.Count)
		}
	}
	if !sawAnswer {
		t.Fatal("workload produced no answered queries")
	}
	_ = sawEmpty // empty subspaces are fine either way; answers must match

	if res, errs := e.MeanBatch(nil); len(res) != 0 || len(errs) != 0 {
		t.Errorf("empty batch: %d results, %d errs", len(res), len(errs))
	}
}

func TestRegressionBatchMatchesSequential(t *testing.T) {
	tab, _ := loadTable(t, 5000, 2, synth.Paraboloid, 0.01, 22)
	e, err := NewExecutor(tab, []string{"x1", "x2"}, "u", nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	qs := make([]RadiusQuery, 40)
	for i := range qs {
		qs[i] = RadiusQuery{
			Center: []float64{rng.Float64(), rng.Float64()},
			Theta:  0.1 + 0.1*rng.Float64(),
		}
	}
	results, errs := e.RegressionBatch(qs)
	for i, q := range qs {
		want, wantErr := e.Regression(q)
		if (errs[i] == nil) != (wantErr == nil) {
			t.Fatalf("query %d: batch err %v, sequential err %v", i, errs[i], wantErr)
		}
		if wantErr != nil {
			continue
		}
		if results[i].Intercept != want.Intercept || results[i].Count != want.Count {
			t.Fatalf("query %d: batch intercept %v, sequential %v", i, results[i].Intercept, want.Intercept)
		}
	}
}
