package exec

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"llmq/internal/synth"
)

func TestMeanBatchMatchesSequential(t *testing.T) {
	tab, _ := loadTable(t, 5000, 2, synth.SensorSurrogate, 0.01, 21)
	e, err := NewExecutor(tab, []string{"x1", "x2"}, "u", nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	qs := make([]RadiusQuery, 100)
	for i := range qs {
		// Include some radii small enough to select nothing.
		qs[i] = RadiusQuery{
			Center: []float64{rng.Float64(), rng.Float64()},
			Theta:  0.002 + 0.15*rng.Float64(),
		}
	}
	results, errs := e.MeanBatch(qs)
	if len(results) != len(qs) || len(errs) != len(qs) {
		t.Fatalf("batch sizes: %d results, %d errs", len(results), len(errs))
	}
	sawEmpty, sawAnswer := false, false
	for i, q := range qs {
		want, wantErr := e.Mean(q)
		if (errs[i] == nil) != (wantErr == nil) {
			t.Fatalf("query %d: batch err %v, sequential err %v", i, errs[i], wantErr)
		}
		if wantErr != nil {
			if !errors.Is(errs[i], ErrEmptySubspace) {
				t.Fatalf("query %d: unexpected error %v", i, errs[i])
			}
			sawEmpty = true
			continue
		}
		sawAnswer = true
		if results[i].Mean != want.Mean || results[i].Count != want.Count {
			t.Fatalf("query %d: batch (%v, %d), sequential (%v, %d)",
				i, results[i].Mean, results[i].Count, want.Mean, want.Count)
		}
	}
	if !sawAnswer {
		t.Fatal("workload produced no answered queries")
	}
	_ = sawEmpty // empty subspaces are fine either way; answers must match

	if res, errs := e.MeanBatch(nil); len(res) != 0 || len(errs) != 0 {
		t.Errorf("empty batch: %d results, %d errs", len(res), len(errs))
	}
}

func TestRegressionBatchMatchesSequential(t *testing.T) {
	tab, _ := loadTable(t, 5000, 2, synth.Paraboloid, 0.01, 22)
	e, err := NewExecutor(tab, []string{"x1", "x2"}, "u", nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	qs := make([]RadiusQuery, 40)
	for i := range qs {
		qs[i] = RadiusQuery{
			Center: []float64{rng.Float64(), rng.Float64()},
			Theta:  0.1 + 0.1*rng.Float64(),
		}
	}
	results, errs := e.RegressionBatch(qs)
	for i, q := range qs {
		want, wantErr := e.Regression(q)
		if (errs[i] == nil) != (wantErr == nil) {
			t.Fatalf("query %d: batch err %v, sequential err %v", i, errs[i], wantErr)
		}
		if wantErr != nil {
			continue
		}
		if results[i].Intercept != want.Intercept || results[i].Count != want.Count {
			t.Fatalf("query %d: batch intercept %v, sequential %v", i, results[i].Intercept, want.Intercept)
		}
	}
}

// TestForEachParallelCtxCancellation verifies the pool's cancellation
// contract: indices claimed before the cancellation complete, no index is
// claimed afterwards, and the call reports the context error.
func TestForEachParallelCtxCancellation(t *testing.T) {
	const n = 10000
	ctx, cancel := context.WithCancel(context.Background())
	var executed atomic.Int64
	release := make(chan struct{})
	var once sync.Once
	err := ForEachParallelCtx(ctx, n, func(i int) {
		executed.Add(1)
		// The first claimed indices cancel the context and stall until the
		// cancellation has propagated, so no worker can outrun it.
		once.Do(func() {
			cancel()
			close(release)
		})
		<-release
	})
	defer cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled pool returned %v, want context.Canceled", err)
	}
	got := executed.Load()
	// Every worker may have claimed at most one index before the first fn
	// call cancelled; afterwards nothing is claimed.
	if max := int64(runtime.GOMAXPROCS(0) + 1); got > max {
		t.Fatalf("cancelled pool executed %d indices, want <= %d", got, max)
	}
	if got == 0 {
		t.Fatal("cancelled pool executed nothing at all")
	}
}

// TestForEachParallelCtxComplete verifies the nil-context-error path is
// exhaustive: every index runs exactly once.
func TestForEachParallelCtxComplete(t *testing.T) {
	const n = 777
	seen := make([]int32, n)
	if err := ForEachParallelCtx(context.Background(), n, func(i int) {
		atomic.AddInt32(&seen[i], 1)
	}); err != nil {
		t.Fatalf("uncancelled pool returned %v", err)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d ran %d times, want 1", i, c)
		}
	}
}

// TestMeanBatchCtxMarksSkipped verifies a cancelled batch distinguishes
// skipped queries (context error) from executed ones.
func TestMeanBatchCtxMarksSkipped(t *testing.T) {
	tab, _ := loadTable(t, 2000, 2, synth.SensorSurrogate, 0.01, 22)
	e, err := NewExecutor(tab, []string{"x1", "x2"}, "u", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the pool starts: everything is skipped
	qs := make([]RadiusQuery, 50)
	for i := range qs {
		qs[i] = RadiusQuery{Center: []float64{0.5, 0.5}, Theta: 0.1}
	}
	_, errs := e.MeanBatchCtx(ctx, qs)
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("query %d: err=%v, want context.Canceled", i, err)
		}
	}
}
