package exec

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachParallelStreamFeedsEveryIndexOnce(t *testing.T) {
	const n = 200
	completed := make(chan int, n)
	var mu sync.Mutex
	ran := make([]bool, n)
	if err := ForEachParallelStream(context.Background(), n, func(i int) {
		mu.Lock()
		ran[i] = true
		mu.Unlock()
	}, completed); err != nil {
		t.Fatal(err)
	}
	close(completed)
	seen := make([]bool, n)
	count := 0
	for i := range completed {
		if seen[i] {
			t.Fatalf("index %d fed twice", i)
		}
		seen[i] = true
		if !ran[i] {
			t.Fatalf("index %d fed before its fn ran", i)
		}
		count++
	}
	if count != n {
		t.Fatalf("fed %d of %d indices", count, n)
	}
}

// TestForEachParallelStreamUnbufferedConsumer drives the other legal calling
// shape: an unbuffered channel with a live consumer, so workers block on the
// send until the consumer catches up and the call still completes.
func TestForEachParallelStreamUnbufferedConsumer(t *testing.T) {
	const n = 64
	completed := make(chan int)
	var got atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range completed {
			got.Add(1)
		}
	}()
	if err := ForEachParallelStream(context.Background(), n, func(int) {}, completed); err != nil {
		t.Fatal(err)
	}
	close(completed)
	<-done
	if got.Load() != n {
		t.Fatalf("consumer received %d of %d", got.Load(), n)
	}
}

// TestForEachParallelStreamCancellation checks the contract that matters to
// the streaming batch handler: after a cancellation, exactly the indices
// whose fn ran were fed — no phantom completions for skipped statements.
func TestForEachParallelStreamCancellation(t *testing.T) {
	const n = 10000
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	completed := make(chan int, n)
	var calls atomic.Int64
	err := ForEachParallelStream(ctx, n, func(int) {
		if calls.Add(1) == 5 {
			cancel()
		}
	}, completed)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(completed)
	fed := 0
	for range completed {
		fed++
	}
	if int64(fed) != calls.Load() {
		t.Fatalf("fed %d completions for %d executed fns", fed, calls.Load())
	}
	if fed >= n {
		t.Fatal("cancellation did not stop the pool")
	}
}
