package exec

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"llmq/internal/dataset"
	"llmq/internal/engine"
	"llmq/internal/index"
	"llmq/internal/synth"
)

// loadTable creates a catalog table from a synthetic dataset built on a known
// data function.
func loadTable(t testing.TB, n, dim int, fn synth.DataFunc, noise float64, seed int64) (*engine.Table, *dataset.Dataset) {
	t.Helper()
	pts, err := synth.Generate(synth.Config{
		Name: "t", N: n, Dim: dim, Lo: 0, Hi: 1, Func: fn, NoiseStdDev: noise, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.FromPoints("t", pts.Xs, pts.Us)
	if err != nil {
		t.Fatal(err)
	}
	cat := engine.NewCatalog()
	tab, err := cat.LoadDataset("t", ds)
	if err != nil {
		t.Fatal(err)
	}
	return tab, ds
}

func TestNewExecutorValidation(t *testing.T) {
	tab, _ := loadTable(t, 100, 2, synth.Paraboloid, 0, 1)
	if _, err := NewExecutor(tab, nil, "u", nil); !errors.Is(err, ErrNoInputs) {
		t.Errorf("no inputs err = %v", err)
	}
	if _, err := NewExecutor(tab, []string{"zz"}, "u", nil); err == nil {
		t.Error("unknown input column accepted")
	}
	if _, err := NewExecutor(tab, []string{"x1", "x2"}, "zz", nil); err == nil {
		t.Error("unknown output column accepted")
	}
	// Index dimension mismatch.
	badIdx, _ := index.NewLinear([][]float64{{1}, {2}})
	if _, err := NewExecutor(tab, []string{"x1", "x2"}, "u", badIdx); err == nil {
		t.Error("index dimension mismatch accepted")
	}
	// Index size mismatch.
	smallIdx, _ := index.NewLinear([][]float64{{1, 2}})
	if _, err := NewExecutor(tab, []string{"x1", "x2"}, "u", smallIdx); err == nil {
		t.Error("index size mismatch accepted")
	}
	e, err := NewExecutor(tab, []string{"x1", "x2"}, "u", nil)
	if err != nil {
		t.Fatal(err)
	}
	if e.OutputName() != "u" || len(e.InputNames()) != 2 || e.Table() != tab {
		t.Error("accessors broken")
	}
}

func TestMeanMatchesBruteForce(t *testing.T) {
	tab, ds := loadTable(t, 2000, 2, synth.SensorSurrogate, 0.01, 2)
	e, err := NewExecutor(tab, []string{"x1", "x2"}, "u", nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		q := RadiusQuery{Center: []float64{rng.Float64(), rng.Float64()}, Theta: 0.15 + 0.1*rng.Float64()}
		res, err := e.Mean(q)
		if err != nil {
			if errors.Is(err, ErrEmptySubspace) {
				continue
			}
			t.Fatal(err)
		}
		// Brute force.
		var sum float64
		var count int
		for i := range ds.Xs {
			dx := ds.Xs[i][0] - q.Center[0]
			dy := ds.Xs[i][1] - q.Center[1]
			if math.Sqrt(dx*dx+dy*dy) <= q.Theta {
				sum += ds.Us[i]
				count++
			}
		}
		if count != res.Count {
			t.Fatalf("trial %d: count %d vs brute force %d", trial, res.Count, count)
		}
		if math.Abs(res.Mean-sum/float64(count)) > 1e-10 {
			t.Fatalf("trial %d: mean %v vs brute force %v", trial, res.Mean, sum/float64(count))
		}
		if res.Elapsed < 0 {
			t.Error("elapsed must be non-negative")
		}
	}
}

func TestMeanEmptySubspace(t *testing.T) {
	tab, _ := loadTable(t, 100, 2, synth.Paraboloid, 0, 4)
	e, _ := NewExecutor(tab, []string{"x1", "x2"}, "u", nil)
	_, err := e.Mean(RadiusQuery{Center: []float64{50, 50}, Theta: 0.1})
	if !errors.Is(err, ErrEmptySubspace) {
		t.Errorf("err = %v, want ErrEmptySubspace", err)
	}
	_, err = e.Regression(RadiusQuery{Center: []float64{50, 50}, Theta: 0.1})
	if !errors.Is(err, ErrEmptySubspace) {
		t.Errorf("regression err = %v, want ErrEmptySubspace", err)
	}
	if _, _, err := e.SubspaceValues(RadiusQuery{Center: []float64{50, 50}, Theta: 0.1}); !errors.Is(err, ErrEmptySubspace) {
		t.Errorf("subspace err = %v", err)
	}
}

func TestRegressionRecoversLinearFunction(t *testing.T) {
	// For a perfectly linear data function, REG must recover the plane and
	// report FVU ~ 0, CoD ~ 1.
	plane := synth.Plane(0.5, []float64{2, -1})
	tab, _ := loadTable(t, 3000, 2, plane, 0, 5)
	e, err := NewExecutor(tab, []string{"x1", "x2"}, "u", nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Regression(RadiusQuery{Center: []float64{0.5, 0.5}, Theta: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Intercept-0.5) > 1e-6 || math.Abs(res.Slope[0]-2) > 1e-6 || math.Abs(res.Slope[1]+1) > 1e-6 {
		t.Errorf("coefficients = %v, %v", res.Intercept, res.Slope)
	}
	if res.FVU > 1e-9 || res.CoD < 1-1e-9 {
		t.Errorf("FVU=%v CoD=%v", res.FVU, res.CoD)
	}
	if res.Predict([]float64{1, 1}) != res.Intercept+res.Slope[0]+res.Slope[1] {
		t.Error("Predict inconsistent with coefficients")
	}
}

func TestRegressionOnNonLinearDataHasHighFVU(t *testing.T) {
	// Over a wide subspace of a strongly non-linear function the global
	// linear fit should leave substantial unexplained variance.
	tab, _ := loadTable(t, 5000, 2, synth.SensorSurrogate, 0, 6)
	e, _ := NewExecutor(tab, []string{"x1", "x2"}, "u", nil)
	res, err := e.Regression(RadiusQuery{Center: []float64{0.5, 0.5}, Theta: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if res.FVU < 0.05 {
		t.Errorf("expected a poor global fit over a non-linear subspace, FVU = %v", res.FVU)
	}
}

func TestGoodnessOverSubspace(t *testing.T) {
	plane := synth.Plane(1, []float64{3})
	tab, _ := loadTable(t, 500, 1, plane, 0, 7)
	e, _ := NewExecutor(tab, []string{"x1"}, "u", nil)
	q := RadiusQuery{Center: []float64{0.5}, Theta: 0.4}
	// Perfect predictor.
	g, err := e.GoodnessOverSubspace(q, func(x []float64) float64 { return 1 + 3*x[0] })
	if err != nil {
		t.Fatal(err)
	}
	if g.FVU > 1e-12 || g.CoD < 1-1e-12 {
		t.Errorf("perfect predictor: %+v", g)
	}
	// Constant predictor explains nothing: FVU ~ 1.
	g, err = e.GoodnessOverSubspace(q, func(x []float64) float64 { return 2.5 })
	if err != nil {
		t.Fatal(err)
	}
	if g.FVU < 0.5 {
		t.Errorf("constant predictor should have high FVU, got %+v", g)
	}
	if _, err := e.GoodnessOverSubspace(RadiusQuery{Center: []float64{99}, Theta: 0.01}, func([]float64) float64 { return 0 }); !errors.Is(err, ErrEmptySubspace) {
		t.Errorf("empty subspace err = %v", err)
	}
}

func TestGridExecutorAgreesWithLinear(t *testing.T) {
	tab, _ := loadTable(t, 3000, 3, synth.SensorSurrogate, 0, 8)
	linE, err := NewExecutor(tab, []string{"x1", "x2", "x3"}, "u", nil)
	if err != nil {
		t.Fatal(err)
	}
	gridE, err := NewExecutorWithGrid(tab, []string{"x1", "x2", "x3"}, "u", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 15; trial++ {
		q := RadiusQuery{
			Center: []float64{rng.Float64(), rng.Float64(), rng.Float64()},
			Theta:  0.1 + 0.1*rng.Float64(),
		}
		a, errA := linE.Mean(q)
		b, errB := gridE.Mean(q)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("trial %d: error mismatch %v vs %v", trial, errA, errB)
		}
		if errA != nil {
			continue
		}
		if a.Count != b.Count || math.Abs(a.Mean-b.Mean) > 1e-10 {
			t.Fatalf("trial %d: linear (%d, %v) vs grid (%d, %v)", trial, a.Count, a.Mean, b.Count, b.Mean)
		}
	}
}

func TestSelectWithDifferentNorms(t *testing.T) {
	tab, _ := loadTable(t, 1000, 2, synth.Paraboloid, 0, 10)
	e, _ := NewExecutor(tab, []string{"x1", "x2"}, "u", nil)
	center := []float64{0.5, 0.5}
	l2, err := e.Select(RadiusQuery{Center: center, Theta: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	l1, err := e.Select(RadiusQuery{Center: center, Theta: 0.2, P: 1})
	if err != nil {
		t.Fatal(err)
	}
	linf, err := e.Select(RadiusQuery{Center: center, Theta: 0.2, P: math.Inf(1)})
	if err != nil {
		t.Fatal(err)
	}
	// L1 ball ⊆ L2 ball ⊆ L∞ ball for the same radius.
	if !(len(l1) <= len(l2) && len(l2) <= len(linf)) {
		t.Errorf("norm ball containment violated: |L1|=%d |L2|=%d |Linf|=%d", len(l1), len(l2), len(linf))
	}
}

func TestRegressionErrorOnTinySubspace(t *testing.T) {
	// A subspace with fewer points than coefficients must surface an error,
	// not a bogus fit.
	tab, _ := loadTable(t, 3, 2, synth.Paraboloid, 0, 11)
	e, _ := NewExecutor(tab, []string{"x1", "x2"}, "u", nil)
	// Radius large enough to select exactly the 3 points is fine (3 = d+1);
	// shrink until fewer than 3 are selected to trigger the error.
	_, err := e.Regression(RadiusQuery{Center: []float64{0, 0}, Theta: 1e-9})
	if err == nil {
		t.Error("expected an error for an under-determined regression")
	}
}

func BenchmarkExactMean10k(b *testing.B) {
	tab, _ := loadTable(b, 10000, 2, synth.SensorSurrogate, 0.01, 12)
	e, err := NewExecutor(tab, []string{"x1", "x2"}, "u", nil)
	if err != nil {
		b.Fatal(err)
	}
	q := RadiusQuery{Center: []float64{0.5, 0.5}, Theta: 0.2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Mean(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactRegression10k(b *testing.B) {
	tab, _ := loadTable(b, 10000, 2, synth.SensorSurrogate, 0.01, 13)
	e, err := NewExecutor(tab, []string{"x1", "x2"}, "u", nil)
	if err != nil {
		b.Fatal(err)
	}
	q := RadiusQuery{Center: []float64{0.5, 0.5}, Theta: 0.2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Regression(q); err != nil {
			b.Fatal(err)
		}
	}
}
