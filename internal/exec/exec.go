// Package exec implements exact query execution over the in-memory DBMS
// substrate: the dNN (radius) selection operator, the exact mean-value query
// Q1 (Definition 4) and the exact multivariate linear-regression query Q2
// (the paper's REG baseline, Definition 1). These executors have full access
// to the data, so their cost grows with the size of the selected subspace —
// they provide both the ground truth used to train the LLM model and the
// baseline it is compared against.
package exec

import (
	"context"
	"errors"
	"fmt"
	"time"

	"llmq/internal/engine"
	"llmq/internal/index"
	"llmq/internal/linalg"
	"llmq/internal/stats"
)

// Errors returned by the executor.
var (
	ErrEmptySubspace = errors.New("exec: query selects no tuples")
	ErrNoInputs      = errors.New("exec: at least one input attribute is required")
)

// RadiusQuery is the selection operator shared by Q1 and Q2: all tuples whose
// input attributes lie within Lp distance Theta of Center.
type RadiusQuery struct {
	// Center is the query centre x.
	Center []float64
	// Theta is the radius θ (>= 0).
	Theta float64
	// P selects the Lp norm; 0 means L2.
	P float64
}

func (q RadiusQuery) norm() float64 {
	if q.P == 0 {
		return 2
	}
	return q.P
}

// MeanResult is the answer to an exact Q1 query.
type MeanResult struct {
	// Mean is the average of the output attribute over the selected subspace.
	Mean float64
	// Count is the cardinality n_θ(x) of the subspace.
	Count int
	// Elapsed is the wall-clock execution time.
	Elapsed time.Duration
}

// RegressionResult is the answer to an exact Q2 query: a single global OLS
// fit over the selected subspace (the REG baseline).
type RegressionResult struct {
	// Intercept and Slope are the fitted coefficients b0 and b.
	Intercept float64
	Slope     []float64
	// Count is the cardinality of the subspace the model was fitted on.
	Count int
	// FVU and CoD are the in-subspace goodness-of-fit metrics.
	FVU float64
	CoD float64
	// Elapsed is the wall-clock execution time.
	Elapsed time.Duration
}

// Executor evaluates exact Q1/Q2 queries against one relation. The relation's
// input attributes and output attribute are fixed at construction; the
// spatial index accelerates the selection.
type Executor struct {
	table   *engine.Table
	idx     index.SpatialIndex
	inCols  []int
	outCol  int
	inNames []string
	outName string
}

// NewExecutor builds an executor over table using the named input attributes
// and output attribute. If idx is nil a linear-scan index is built over the
// input attributes.
func NewExecutor(table *engine.Table, inputs []string, output string, idx index.SpatialIndex) (*Executor, error) {
	if len(inputs) == 0 {
		return nil, ErrNoInputs
	}
	schema := table.Schema()
	inCols := make([]int, len(inputs))
	for i, name := range inputs {
		c, err := schema.ColumnIndex(name)
		if err != nil {
			return nil, err
		}
		inCols[i] = c
	}
	outCol, err := schema.ColumnIndex(output)
	if err != nil {
		return nil, err
	}
	e := &Executor{
		table:   table,
		inCols:  inCols,
		outCol:  outCol,
		inNames: append([]string(nil), inputs...),
		outName: output,
	}
	if idx == nil {
		pts := e.materializeInputs()
		if len(pts) == 0 {
			return nil, fmt.Errorf("exec: table %q is empty", table.Name())
		}
		lin, err := index.NewLinear(pts)
		if err != nil {
			return nil, err
		}
		idx = lin
	}
	if idx.Dim() != len(inputs) {
		return nil, fmt.Errorf("exec: index dimension %d does not match %d input attributes", idx.Dim(), len(inputs))
	}
	if idx.Len() != table.Len() {
		return nil, fmt.Errorf("exec: index covers %d points but table has %d rows", idx.Len(), table.Len())
	}
	e.idx = idx
	return e, nil
}

// NewExecutorWithGrid is a convenience constructor that builds a grid index
// with the given cell size over the input attributes.
func NewExecutorWithGrid(table *engine.Table, inputs []string, output string, cellSize float64) (*Executor, error) {
	tmp, err := NewExecutor(table, inputs, output, nil)
	if err != nil {
		return nil, err
	}
	grid, err := index.NewGrid(tmp.materializeInputs(), cellSize)
	if err != nil {
		return nil, err
	}
	return NewExecutor(table, inputs, output, grid)
}

// InputNames returns the input attribute names.
func (e *Executor) InputNames() []string { return append([]string(nil), e.inNames...) }

// OutputName returns the output attribute name.
func (e *Executor) OutputName() string { return e.outName }

// Table returns the underlying relation.
func (e *Executor) Table() *engine.Table { return e.table }

// materializeInputs builds the row-major input point set for index
// construction.
func (e *Executor) materializeInputs() [][]float64 {
	n := e.table.Len()
	pts := make([][]float64, n)
	cols := make([][]float64, len(e.inCols))
	for j, c := range e.inCols {
		cols[j] = e.table.ColumnAt(c)
	}
	for i := 0; i < n; i++ {
		p := make([]float64, len(cols))
		for j := range cols {
			p[j] = cols[j][i]
		}
		pts[i] = p
	}
	return pts
}

// Select returns the row ids of the subspace D(x, θ).
func (e *Executor) Select(q RadiusQuery) ([]int, error) {
	return e.idx.Radius(q.Center, q.Theta, q.norm())
}

// Mean executes the exact Q1 query: the average of the output attribute over
// D(x, θ). It returns ErrEmptySubspace when no tuple qualifies.
func (e *Executor) Mean(q RadiusQuery) (MeanResult, error) {
	return e.MeanCtx(context.Background(), q)
}

// ctxCheckRows is how many reduction rows run between cancellation checks
// in the context-aware executors: frequent enough that an abandoned scan
// over a large subspace stops within microseconds, rare enough that the
// atomic load is invisible in the per-row cost.
const ctxCheckRows = 4096

// MeanCtx is Mean bound to a context: the selection, the reduction loop
// (checked every ctxCheckRows rows) and the stage boundaries all observe
// cancellation, so a disconnected client or an expired deadline stops the
// relation scan instead of leaving it running for nobody.
func (e *Executor) MeanCtx(ctx context.Context, q RadiusQuery) (MeanResult, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return MeanResult{}, err
	}
	ids, err := e.Select(q)
	if err != nil {
		return MeanResult{}, err
	}
	if len(ids) == 0 {
		return MeanResult{}, ErrEmptySubspace
	}
	if err := ctx.Err(); err != nil {
		return MeanResult{}, err
	}
	out := e.table.ColumnAt(e.outCol)
	var sum float64
	for i, id := range ids {
		if i%ctxCheckRows == ctxCheckRows-1 {
			if err := ctx.Err(); err != nil {
				return MeanResult{}, err
			}
		}
		sum += out[id]
	}
	return MeanResult{
		Mean:    sum / float64(len(ids)),
		Count:   len(ids),
		Elapsed: time.Since(start),
	}, nil
}

// Regression executes the exact Q2 query: a single multivariate OLS fit of
// the output on the input attributes over D(x, θ) — the REG baseline.
func (e *Executor) Regression(q RadiusQuery) (RegressionResult, error) {
	return e.RegressionCtx(context.Background(), q)
}

// RegressionCtx is Regression bound to a context: cancellation is observed
// before the selection, between the selection and the gather, and before
// the OLS fit — the three cost cliffs of the exact Q2 path.
func (e *Executor) RegressionCtx(ctx context.Context, q RadiusQuery) (RegressionResult, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return RegressionResult{}, err
	}
	ids, err := e.Select(q)
	if err != nil {
		return RegressionResult{}, err
	}
	if len(ids) == 0 {
		return RegressionResult{}, ErrEmptySubspace
	}
	if err := ctx.Err(); err != nil {
		return RegressionResult{}, err
	}
	xs, us := e.gather(ids)
	if err := ctx.Err(); err != nil {
		return RegressionResult{}, err
	}
	model, err := linalg.FitOLS(xs, us)
	if err != nil {
		return RegressionResult{}, fmt.Errorf("exec: regression over %d tuples: %w", len(ids), err)
	}
	return RegressionResult{
		Intercept: model.Intercept,
		Slope:     model.Slope,
		Count:     len(ids),
		FVU:       model.FVU(),
		CoD:       model.R2(),
		Elapsed:   time.Since(start),
	}, nil
}

// Predict evaluates the REG model fitted over D(x, θ) at each of the given
// points, returning the predictions. It is used for the data-value accuracy
// comparison (metric A2).
func (r RegressionResult) Predict(x []float64) float64 {
	s := r.Intercept
	for j, b := range r.Slope {
		s += b * x[j]
	}
	return s
}

// GlobalRegression fits a single multivariate OLS model of the output on the
// input attributes over the ENTIRE relation — the "one global linear model"
// an analyst gets without subspace-aware tooling (Figure 1 (right) of the
// paper). Its goodness of fit, when evaluated inside a small data subspace,
// is typically poor (FVU at or above 1), which is the behaviour the paper
// reports for its REG baseline.
func (e *Executor) GlobalRegression() (RegressionResult, error) {
	start := time.Now()
	n := e.table.Len()
	if n == 0 {
		return RegressionResult{}, ErrEmptySubspace
	}
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	xs, us := e.gather(ids)
	model, err := linalg.FitOLS(xs, us)
	if err != nil {
		return RegressionResult{}, fmt.Errorf("exec: global regression: %w", err)
	}
	return RegressionResult{
		Intercept: model.Intercept,
		Slope:     model.Slope,
		Count:     n,
		FVU:       model.FVU(),
		CoD:       model.R2(),
		Elapsed:   time.Since(start),
	}, nil
}

// SubspaceValues returns the raw (x, u) observations inside D(x, θ); the
// evaluation harness uses them to score any model's goodness of fit over the
// same subspace the paper scores REG, PLR and LLM on.
func (e *Executor) SubspaceValues(q RadiusQuery) (xs [][]float64, us []float64, err error) {
	ids, err := e.Select(q)
	if err != nil {
		return nil, nil, err
	}
	if len(ids) == 0 {
		return nil, nil, ErrEmptySubspace
	}
	xs, us = e.gather(ids)
	return xs, us, nil
}

// GoodnessOverSubspace scores arbitrary predictions against the actual output
// values of the subspace selected by q. The predict callback receives each
// input vector in the subspace.
func (e *Executor) GoodnessOverSubspace(q RadiusQuery, predict func(x []float64) float64) (stats.GoodnessOfFit, error) {
	xs, us, err := e.SubspaceValues(q)
	if err != nil {
		return stats.GoodnessOfFit{}, err
	}
	preds := make([]float64, len(xs))
	for i, x := range xs {
		preds[i] = predict(x)
	}
	return stats.Fit(us, preds)
}

func (e *Executor) gather(ids []int) ([][]float64, []float64) {
	cols := make([][]float64, len(e.inCols))
	for j, c := range e.inCols {
		cols[j] = e.table.ColumnAt(c)
	}
	out := e.table.ColumnAt(e.outCol)
	xs := make([][]float64, len(ids))
	us := make([]float64, len(ids))
	for k, id := range ids {
		x := make([]float64, len(cols))
		for j := range cols {
			x[j] = cols[j][id]
		}
		xs[k] = x
		us[k] = out[id]
	}
	return xs, us
}
