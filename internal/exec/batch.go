package exec

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Batched exact execution. The Executor never mutates the table or the
// spatial index, so independent queries can be evaluated concurrently as
// long as no other goroutine inserts into the table; the batch entry points
// below drain a query list with a bounded worker pool. Results and errors
// are positional: errs[i] is non-nil (typically ErrEmptySubspace) exactly
// when the i-th query produced no result.

// ForEachParallel runs fn(0..n-1) over min(GOMAXPROCS, n) workers. Work is
// handed out by an atomic cursor, so long-running queries do not stall the
// rest of the batch. It is exported because the serve and cmd layers drain
// their per-statement batches with the same pool shape.
func ForEachParallel(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// MeanBatch executes many exact Q1 queries concurrently.
func (e *Executor) MeanBatch(qs []RadiusQuery) ([]MeanResult, []error) {
	results := make([]MeanResult, len(qs))
	errs := make([]error, len(qs))
	ForEachParallel(len(qs), func(i int) {
		results[i], errs[i] = e.Mean(qs[i])
	})
	return results, errs
}

// RegressionBatch executes many exact Q2 queries concurrently.
func (e *Executor) RegressionBatch(qs []RadiusQuery) ([]RegressionResult, []error) {
	results := make([]RegressionResult, len(qs))
	errs := make([]error, len(qs))
	ForEachParallel(len(qs), func(i int) {
		results[i], errs[i] = e.Regression(qs[i])
	})
	return results, errs
}
