package exec

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Batched exact execution. The Executor never mutates the table or the
// spatial index, so independent queries can be evaluated concurrently as
// long as no other goroutine inserts into the table; the batch entry points
// below drain a query list with a bounded worker pool. Results and errors
// are positional: errs[i] is non-nil (typically ErrEmptySubspace) exactly
// when the i-th query produced no result.

// ForEachParallel runs fn(0..n-1) over min(GOMAXPROCS, n) workers. Work is
// handed out by an atomic cursor, so long-running queries do not stall the
// rest of the batch. It is exported because the serve and cmd layers drain
// their per-statement batches with the same pool shape.
func ForEachParallel(n int, fn func(i int)) {
	_ = ForEachParallelCtx(context.Background(), n, fn)
}

// ForEachParallelCtx is ForEachParallel bound to a context: once ctx is
// cancelled, workers stop claiming new indices and the call returns
// ctx.Err() after the in-flight fn calls finish — an abandoned HTTP batch
// request stops burning the pool mid-sheet instead of completing the whole
// sheet for nobody. Indices claimed before the cancellation run to
// completion (fn is never interrupted mid-call), so on a nil error every
// index was processed, and on ctx.Err() a prefix-dense subset was.
//
// The cancellation check costs one atomic load per claimed index; callers
// whose fn blocks for long stretches should additionally check ctx inside
// fn if they need sub-item latency.
func ForEachParallelCtx(ctx context.Context, n int, fn func(i int)) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	done := ctx.Done()
	if workers <= 1 {
		for i := 0; i < n; i++ {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
			fn(i)
		}
		return ctx.Err()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// ForEachParallelStream is ForEachParallelCtx with a completion feed: after
// each fn(i) returns, i is sent on completed, so a consumer can act on
// finished items (flush an HTTP response frame, update a progress bar)
// while the rest of the batch is still running. Completion order is the
// order items finish, not index order — a consumer that needs ordered
// output reorders on its side.
//
// The caller owns the channel: it must either keep receiving or size the
// buffer at n, or the workers block on the send; and it closes the channel
// (after this call returns) if the consumer ranges over it. The error
// contract is ForEachParallelCtx's: nil means every index completed (and
// was sent), ctx.Err() means a prefix-dense subset was.
func ForEachParallelStream(ctx context.Context, n int, fn func(i int), completed chan<- int) error {
	return ForEachParallelCtx(ctx, n, func(i int) {
		fn(i)
		completed <- i
	})
}

// MeanBatch executes many exact Q1 queries concurrently.
func (e *Executor) MeanBatch(qs []RadiusQuery) ([]MeanResult, []error) {
	return e.MeanBatchCtx(context.Background(), qs)
}

// MeanBatchCtx is MeanBatch bound to a context; queries the cancelled pool
// never reached carry the context error in their errs slot.
func (e *Executor) MeanBatchCtx(ctx context.Context, qs []RadiusQuery) ([]MeanResult, []error) {
	results := make([]MeanResult, len(qs))
	errs := make([]error, len(qs))
	ran := make([]bool, len(qs))
	if err := ForEachParallelCtx(ctx, len(qs), func(i int) {
		results[i], errs[i] = e.MeanCtx(ctx, qs[i])
		ran[i] = true
	}); err != nil {
		markSkipped(errs, ran, err)
	}
	return results, errs
}

// RegressionBatch executes many exact Q2 queries concurrently.
func (e *Executor) RegressionBatch(qs []RadiusQuery) ([]RegressionResult, []error) {
	return e.RegressionBatchCtx(context.Background(), qs)
}

// RegressionBatchCtx is RegressionBatch bound to a context; queries the
// cancelled pool never reached carry the context error in their errs slot.
func (e *Executor) RegressionBatchCtx(ctx context.Context, qs []RadiusQuery) ([]RegressionResult, []error) {
	results := make([]RegressionResult, len(qs))
	errs := make([]error, len(qs))
	ran := make([]bool, len(qs))
	if err := ForEachParallelCtx(ctx, len(qs), func(i int) {
		results[i], errs[i] = e.RegressionCtx(ctx, qs[i])
		ran[i] = true
	}); err != nil {
		markSkipped(errs, ran, err)
	}
	return results, errs
}

// markSkipped writes the cancellation error into the slot of every query the
// pool never claimed, so callers can tell "skipped by cancellation" apart
// from "executed successfully" — both would otherwise read as a nil error.
// Each ran flag is written only by the worker that claimed that index, and
// the pool's WaitGroup orders those writes before this read.
func markSkipped(errs []error, ran []bool, err error) {
	for i := range errs {
		if !ran[i] {
			errs[i] = err
		}
	}
}
