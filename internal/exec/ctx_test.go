package exec

import (
	"context"
	"errors"
	"testing"
	"time"

	"llmq/internal/synth"
)

// TestMeanRegressionCtxCancelled verifies the context-aware exact path: a
// cancelled context stops MeanCtx/RegressionCtx with the context error
// before (or during) the scan, an expired deadline does the same, and a
// live context changes nothing versus the plain entry points.
func TestMeanRegressionCtxCancelled(t *testing.T) {
	tab, ds := loadTable(t, 5000, 2, synth.Paraboloid, 0.1, 5)
	e, err := NewExecutor(tab, ds.InputNames, ds.OutputName, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := RadiusQuery{Center: []float64{0.5, 0.5}, Theta: 0.3}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.MeanCtx(cancelled, q); !errors.Is(err, context.Canceled) {
		t.Errorf("MeanCtx on a cancelled context: err = %v", err)
	}
	if _, err := e.RegressionCtx(cancelled, q); !errors.Is(err, context.Canceled) {
		t.Errorf("RegressionCtx on a cancelled context: err = %v", err)
	}

	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if _, err := e.MeanCtx(expired, q); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("MeanCtx past its deadline: err = %v", err)
	}

	// A live context is the identity: same answer as the plain call.
	plain, err := e.Mean(q)
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := e.MeanCtx(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Mean != withCtx.Mean || plain.Count != withCtx.Count {
		t.Errorf("MeanCtx = %+v, Mean = %+v", withCtx, plain)
	}
	pr, err := e.Regression(q)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := e.RegressionCtx(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Intercept != cr.Intercept || pr.Count != cr.Count {
		t.Errorf("RegressionCtx = %+v, Regression = %+v", cr, pr)
	}
}

// TestBatchCtxThreadsIntoQueries checks the batch pools hand their context
// down into the per-query executors: a pre-cancelled context yields the
// context error in every errs slot (claimed or skipped alike).
func TestBatchCtxThreadsIntoQueries(t *testing.T) {
	tab, ds := loadTable(t, 2000, 2, synth.Paraboloid, 0.1, 7)
	e, err := NewExecutor(tab, ds.InputNames, ds.OutputName, nil)
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]RadiusQuery, 16)
	for i := range qs {
		qs[i] = RadiusQuery{Center: []float64{0.5, 0.5}, Theta: 0.25}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, errs := e.MeanBatchCtx(ctx, qs)
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("errs[%d] = %v, want context.Canceled", i, err)
		}
	}
}
