// Package vector provides small dense real vectors and the Lp distance
// kernel used throughout the library: query centres, data points and
// quantization prototypes are all represented as Vec values.
//
// The package is deliberately allocation-conscious: the hot-path functions
// (Dot, SqDistance, DistanceLp) operate on raw []float64 without copying,
// and the mutating variants (AddScaled, Scale) work in place so the SGD
// update loops in internal/core and internal/quant do not allocate.
package vector

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Vec is a dense real-valued vector. The zero value is an empty vector.
type Vec []float64

// ErrDimensionMismatch is returned (or wrapped) by operations that require
// operands of equal dimension.
var ErrDimensionMismatch = errors.New("vector: dimension mismatch")

// New returns a zero vector of dimension d. It panics if d is negative.
func New(d int) Vec {
	if d < 0 {
		panic("vector: negative dimension")
	}
	return make(Vec, d)
}

// Of returns a vector with the given components.
func Of(values ...float64) Vec {
	v := make(Vec, len(values))
	copy(v, values)
	return v
}

// Clone returns a deep copy of v.
func (v Vec) Clone() Vec {
	if v == nil {
		return nil
	}
	c := make(Vec, len(v))
	copy(c, v)
	return c
}

// Dim returns the dimension (number of components) of v.
func (v Vec) Dim() int { return len(v) }

// At returns the i-th component.
func (v Vec) At(i int) float64 { return v[i] }

// Set assigns the i-th component.
func (v Vec) Set(i int, x float64) { v[i] = x }

// Equal reports whether v and w have the same dimension and identical
// components.
func (v Vec) Equal(w Vec) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// ApproxEqual reports whether v and w have the same dimension and all
// components are within tol of each other.
func (v Vec) ApproxEqual(w Vec, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > tol {
			return false
		}
	}
	return true
}

// Copy copies w into v. Both must have the same dimension.
func (v Vec) Copy(w Vec) {
	if len(v) != len(w) {
		panic(dimError("Copy", len(v), len(w)))
	}
	copy(v, w)
}

// Add returns v + w as a new vector.
func (v Vec) Add(w Vec) Vec {
	if len(v) != len(w) {
		panic(dimError("Add", len(v), len(w)))
	}
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v - w as a new vector.
func (v Vec) Sub(w Vec) Vec {
	if len(v) != len(w) {
		panic(dimError("Sub", len(v), len(w)))
	}
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// SubInto stores v - w into dst and returns dst. dst may alias v or w.
func (v Vec) SubInto(dst, w Vec) Vec {
	if len(v) != len(w) || len(dst) != len(v) {
		panic(dimError("SubInto", len(v), len(w)))
	}
	for i := range v {
		dst[i] = v[i] - w[i]
	}
	return dst
}

// AddScaled performs the in-place update v += alpha*w. It is the primitive
// behind every SGD update rule in the training algorithms.
func (v Vec) AddScaled(alpha float64, w Vec) {
	if len(v) != len(w) {
		panic(dimError("AddScaled", len(v), len(w)))
	}
	for i := range v {
		v[i] += alpha * w[i]
	}
}

// Scale multiplies v by alpha in place.
func (v Vec) Scale(alpha float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Scaled returns alpha*v as a new vector.
func (v Vec) Scaled(alpha float64) Vec {
	out := make(Vec, len(v))
	for i := range v {
		out[i] = alpha * v[i]
	}
	return out
}

// Dot returns the inner product of v and w.
func (v Vec) Dot(w Vec) float64 {
	if len(v) != len(w) {
		panic(dimError("Dot", len(v), len(w)))
	}
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm2 returns the Euclidean (L2) norm of v.
func (v Vec) Norm2() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// SqNorm2 returns the squared Euclidean norm of v.
func (v Vec) SqNorm2() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return s
}

// NormLp returns the Lp norm of v for p >= 1, or the L-infinity norm when
// p is math.Inf(1).
func (v Vec) NormLp(p float64) float64 {
	switch {
	case math.IsInf(p, 1):
		var m float64
		for _, x := range v {
			if a := math.Abs(x); a > m {
				m = a
			}
		}
		return m
	case p == 1:
		var s float64
		for _, x := range v {
			s += math.Abs(x)
		}
		return s
	case p == 2:
		return v.Norm2()
	case p < 1:
		panic("vector: NormLp requires p >= 1")
	default:
		var s float64
		for _, x := range v {
			s += math.Pow(math.Abs(x), p)
		}
		return math.Pow(s, 1/p)
	}
}

// Sum returns the sum of the components of v.
func (v Vec) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of the components of v. It returns 0 for
// the empty vector.
func (v Vec) Mean() float64 {
	if len(v) == 0 {
		return 0
	}
	return v.Sum() / float64(len(v))
}

// Min returns the minimum component of v. It panics on an empty vector.
func (v Vec) Min() float64 {
	if len(v) == 0 {
		panic("vector: Min of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum component of v. It panics on an empty vector.
func (v Vec) Max() float64 {
	if len(v) == 0 {
		panic("vector: Max of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// IsFinite reports whether every component of v is finite (neither NaN nor
// infinite).
func (v Vec) IsFinite() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// Append returns a new vector holding v followed by tail. Neither operand is
// modified. It is used to assemble query vectors q = [x, θ].
func (v Vec) Append(tail ...float64) Vec {
	out := make(Vec, 0, len(v)+len(tail))
	out = append(out, v...)
	out = append(out, tail...)
	return out
}

// String renders v as "[x1, x2, ...]" with compact float formatting.
func (v Vec) String() string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i, x := range v {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(strconv.FormatFloat(x, 'g', 6, 64))
	}
	sb.WriteByte(']')
	return sb.String()
}

// Distance returns the L2 distance between v and w.
func Distance(v, w Vec) float64 {
	return math.Sqrt(SqDistance(v, w))
}

// SqDistance returns the squared L2 distance between v and w.
func SqDistance(v, w Vec) float64 {
	if len(v) != len(w) {
		panic(dimError("SqDistance", len(v), len(w)))
	}
	var s float64
	for i := range v {
		d := v[i] - w[i]
		s += d * d
	}
	return s
}

// DistanceLp returns the Lp distance between v and w (Definition 2 of the
// paper). p must be >= 1 or math.Inf(1).
func DistanceLp(v, w Vec, p float64) float64 {
	if len(v) != len(w) {
		panic(dimError("DistanceLp", len(v), len(w)))
	}
	switch {
	case math.IsInf(p, 1):
		var m float64
		for i := range v {
			if a := math.Abs(v[i] - w[i]); a > m {
				m = a
			}
		}
		return m
	case p == 1:
		var s float64
		for i := range v {
			s += math.Abs(v[i] - w[i])
		}
		return s
	case p == 2:
		return Distance(v, w)
	case p < 1:
		panic("vector: DistanceLp requires p >= 1")
	default:
		var s float64
		for i := range v {
			s += math.Pow(math.Abs(v[i]-w[i]), p)
		}
		return math.Pow(s, 1/p)
	}
}

// Lerp returns (1-t)*v + t*w as a new vector.
func Lerp(v, w Vec, t float64) Vec {
	if len(v) != len(w) {
		panic(dimError("Lerp", len(v), len(w)))
	}
	out := make(Vec, len(v))
	for i := range v {
		out[i] = (1-t)*v[i] + t*w[i]
	}
	return out
}

// Parse parses a vector from a string of comma- or space-separated floats,
// optionally wrapped in square brackets or parentheses, e.g. "[0.1, 0.2]" or
// "0.1 0.2".
func Parse(s string) (Vec, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "[")
	s = strings.TrimPrefix(s, "(")
	s = strings.TrimSuffix(s, "]")
	s = strings.TrimSuffix(s, ")")
	fields := strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
	if len(fields) == 0 {
		return nil, errors.New("vector: empty input")
	}
	v := make(Vec, 0, len(fields))
	for _, f := range fields {
		x, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("vector: parse %q: %w", f, err)
		}
		v = append(v, x)
	}
	return v, nil
}

func dimError(op string, a, b int) error {
	return fmt.Errorf("%w in %s: %d vs %d", ErrDimensionMismatch, op, a, b)
}
