package vector

import (
	"math"
	"math/rand"
	"testing"
)

// TestChunkedRoundTrip verifies the chunked view reproduces the flat matrix
// row for row, across chunk-boundary row counts.
func TestChunkedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, d := range []int{1, 3, 9} {
		for _, rows := range []int{0, 1, ChunkRows - 1, ChunkRows, ChunkRows + 1, 3*ChunkRows + 17} {
			flat := make([]float64, rows*d)
			for i := range flat {
				flat[i] = rng.NormFloat64()
			}
			m := ChunkedFromFlat(flat, d)
			if m.Rows() != rows || m.Width() != d {
				t.Fatalf("d=%d rows=%d: view reports %d×%d", d, rows, m.Rows(), m.Width())
			}
			for k := 0; k < rows; k++ {
				row := m.Row(k)
				for j := 0; j < d; j++ {
					if row[j] != flat[k*d+j] {
						t.Fatalf("d=%d rows=%d: row %d differs at %d", d, rows, k, j)
					}
				}
			}
		}
	}
}

// TestArgminSqDistanceChunkedMatchesFlat is the exactness property of the
// chunked kernels: same winner index and bit-identical squared distance as
// the flat scan, for every unrolled width and across chunk boundaries.
func TestArgminSqDistanceChunkedMatchesFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, d := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 13} {
		for _, rows := range []int{0, 1, 7, ChunkRows, ChunkRows + 3, 2*ChunkRows + 100} {
			flat := make([]float64, rows*d)
			for i := range flat {
				flat[i] = rng.NormFloat64()
			}
			m := ChunkedFromFlat(flat, d)
			for trial := 0; trial < 20; trial++ {
				q := make([]float64, d)
				for i := range q {
					q[i] = rng.NormFloat64()
				}
				if trial == 0 && rows > 0 {
					copy(q, flat[(rows-1)*d:rows*d]) // exact hit in the last row
				}
				wantIdx, wantSq := ArgminSqDistance(flat, d, q)
				gotIdx, gotSq := ArgminSqDistanceChunked(m, q)
				if gotIdx != wantIdx || (wantIdx >= 0 && gotSq != wantSq) {
					t.Fatalf("d=%d rows=%d: chunked argmin (%d, %v), flat (%d, %v)",
						d, rows, gotIdx, gotSq, wantIdx, wantSq)
				}
			}
		}
	}
}

// TestArgminSqDistanceChunkedRange verifies the tail-scan primitive against a
// brute-force scan of the same row range, including ranges that start inside
// a chunk and carry a pre-seeded best.
func TestArgminSqDistanceChunkedRange(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const d = 3
	rows := 2*ChunkRows + 50
	flat := make([]float64, rows*d)
	for i := range flat {
		flat[i] = rng.NormFloat64()
	}
	m := ChunkedFromFlat(flat, d)
	for _, lo := range []int{0, 1, ChunkRows - 1, ChunkRows, ChunkRows + 13, rows - 1, rows} {
		q := make([]float64, d)
		for i := range q {
			q[i] = rng.NormFloat64()
		}
		want, wantSq := -1, math.Inf(1)
		for k := lo; k < rows; k++ {
			if sq := SqDistanceFlat(flat[k*d:(k+1)*d], q); sq < wantSq {
				want, wantSq = k, sq
			}
		}
		got, gotSq := ArgminSqDistanceChunkedRange(m, q, lo, -1, math.Inf(1))
		if got != want || (want >= 0 && gotSq != wantSq) {
			t.Fatalf("lo=%d: range argmin (%d, %v), want (%d, %v)", lo, got, gotSq, want, wantSq)
		}
		// A seed below every row's distance must survive untouched.
		if sIdx, sSq := ArgminSqDistanceChunkedRange(m, q, lo, rows+5, wantSq/2); sIdx != rows+5 || sSq != wantSq/2 {
			t.Fatalf("lo=%d: seeded range argmin (%d, %v), want seed (%d, %v)", lo, sIdx, sSq, rows+5, wantSq/2)
		}
	}
}

// TestArgminSqDistanceChunkedSeededCutoff verifies that a negative seed index
// acts as a pure cutoff: nothing at or above it is reported.
func TestArgminSqDistanceChunkedSeededCutoff(t *testing.T) {
	flat := []float64{0, 0, 1, 1, 2, 2}
	m := ChunkedFromFlat(flat, 2)
	q := []float64{0, 0}
	if idx, _ := ArgminSqDistanceChunkedSeeded(m, q, -1, 0); idx != -1 {
		t.Fatalf("cutoff 0: got index %d, want -1", idx)
	}
	if idx, sq := ArgminSqDistanceChunkedSeeded(m, q, -1, 0.5); idx != 0 || sq != 0 {
		t.Fatalf("cutoff 0.5: got (%d, %v), want (0, 0)", idx, sq)
	}
}
