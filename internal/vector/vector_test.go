package vector

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewAndDim(t *testing.T) {
	v := New(4)
	if v.Dim() != 4 {
		t.Fatalf("Dim = %d, want 4", v.Dim())
	}
	for i := 0; i < 4; i++ {
		if v.At(i) != 0 {
			t.Fatalf("component %d = %v, want 0", i, v.At(i))
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	New(-1)
}

func TestOfAndClone(t *testing.T) {
	v := Of(1, 2, 3)
	c := v.Clone()
	if !v.Equal(c) {
		t.Fatalf("clone %v differs from original %v", c, v)
	}
	c.Set(0, 99)
	if v.At(0) == 99 {
		t.Fatal("Clone must not share backing storage")
	}
	var nilVec Vec
	if nilVec.Clone() != nil {
		t.Fatal("Clone of nil should be nil")
	}
}

func TestAddSub(t *testing.T) {
	v := Of(1, 2, 3)
	w := Of(4, 5, 6)
	sum := v.Add(w)
	diff := w.Sub(v)
	if !sum.Equal(Of(5, 7, 9)) {
		t.Errorf("Add = %v", sum)
	}
	if !diff.Equal(Of(3, 3, 3)) {
		t.Errorf("Sub = %v", diff)
	}
	// Originals untouched.
	if !v.Equal(Of(1, 2, 3)) || !w.Equal(Of(4, 5, 6)) {
		t.Error("Add/Sub must not mutate operands")
	}
}

func TestSubInto(t *testing.T) {
	v := Of(5, 5)
	w := Of(2, 3)
	dst := New(2)
	got := v.SubInto(dst, w)
	if !got.Equal(Of(3, 2)) {
		t.Errorf("SubInto = %v", got)
	}
	// Aliasing the destination with the receiver is allowed.
	v.SubInto(v, w)
	if !v.Equal(Of(3, 2)) {
		t.Errorf("aliased SubInto = %v", v)
	}
}

func TestAddScaledAndScale(t *testing.T) {
	v := Of(1, 1)
	v.AddScaled(0.5, Of(2, 4))
	if !v.Equal(Of(2, 3)) {
		t.Errorf("AddScaled = %v", v)
	}
	v.Scale(2)
	if !v.Equal(Of(4, 6)) {
		t.Errorf("Scale = %v", v)
	}
	s := v.Scaled(0.5)
	if !s.Equal(Of(2, 3)) || !v.Equal(Of(4, 6)) {
		t.Errorf("Scaled = %v (v=%v)", s, v)
	}
}

func TestDotAndNorms(t *testing.T) {
	v := Of(3, 4)
	if got := v.Dot(Of(1, 2)); got != 11 {
		t.Errorf("Dot = %v", got)
	}
	if got := v.Norm2(); got != 5 {
		t.Errorf("Norm2 = %v", got)
	}
	if got := v.SqNorm2(); got != 25 {
		t.Errorf("SqNorm2 = %v", got)
	}
	if got := v.NormLp(1); got != 7 {
		t.Errorf("L1 = %v", got)
	}
	if got := v.NormLp(math.Inf(1)); got != 4 {
		t.Errorf("Linf = %v", got)
	}
	if got := v.NormLp(2); got != 5 {
		t.Errorf("NormLp(2) = %v", got)
	}
	// General p: L3 norm of (3,4) = (27+64)^(1/3).
	want := math.Pow(91, 1.0/3.0)
	if got := v.NormLp(3); !almostEqual(got, want, 1e-12) {
		t.Errorf("L3 = %v, want %v", got, want)
	}
}

func TestNormLpInvalidP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for p < 1")
		}
	}()
	Of(1, 2).NormLp(0.5)
}

func TestSumMeanMinMax(t *testing.T) {
	v := Of(2, -1, 4)
	if v.Sum() != 5 {
		t.Errorf("Sum = %v", v.Sum())
	}
	if !almostEqual(v.Mean(), 5.0/3.0, 1e-15) {
		t.Errorf("Mean = %v", v.Mean())
	}
	if v.Min() != -1 {
		t.Errorf("Min = %v", v.Min())
	}
	if v.Max() != 4 {
		t.Errorf("Max = %v", v.Max())
	}
	var empty Vec
	if empty.Mean() != 0 {
		t.Errorf("Mean of empty = %v", empty.Mean())
	}
}

func TestMinMaxEmptyPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"Min": func() { Vec{}.Min() },
		"Max": func() { Vec{}.Max() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s of empty vector should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestIsFinite(t *testing.T) {
	if !Of(1, 2, 3).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if Of(1, math.NaN()).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if Of(math.Inf(-1)).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

func TestAppend(t *testing.T) {
	x := Of(1, 2)
	q := x.Append(0.5)
	if !q.Equal(Of(1, 2, 0.5)) {
		t.Errorf("Append = %v", q)
	}
	if !x.Equal(Of(1, 2)) {
		t.Error("Append must not mutate the receiver")
	}
}

func TestDistances(t *testing.T) {
	v := Of(0, 0)
	w := Of(3, 4)
	if got := Distance(v, w); got != 5 {
		t.Errorf("Distance = %v", got)
	}
	if got := SqDistance(v, w); got != 25 {
		t.Errorf("SqDistance = %v", got)
	}
	if got := DistanceLp(v, w, 1); got != 7 {
		t.Errorf("L1 distance = %v", got)
	}
	if got := DistanceLp(v, w, math.Inf(1)); got != 4 {
		t.Errorf("Linf distance = %v", got)
	}
	if got := DistanceLp(v, w, 2); got != 5 {
		t.Errorf("DistanceLp(2) = %v", got)
	}
	want := math.Pow(27+64, 1.0/3.0)
	if got := DistanceLp(v, w, 3); !almostEqual(got, want, 1e-12) {
		t.Errorf("L3 distance = %v, want %v", got, want)
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	cases := map[string]func(){
		"Add":        func() { Of(1).Add(Of(1, 2)) },
		"Sub":        func() { Of(1).Sub(Of(1, 2)) },
		"Dot":        func() { Of(1).Dot(Of(1, 2)) },
		"AddScaled":  func() { Of(1).AddScaled(1, Of(1, 2)) },
		"Copy":       func() { Of(1).Copy(Of(1, 2)) },
		"SqDistance": func() { SqDistance(Of(1), Of(1, 2)) },
		"DistanceLp": func() { DistanceLp(Of(1), Of(1, 2), 2) },
		"Lerp":       func() { Lerp(Of(1), Of(1, 2), 0.5) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched dims should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestLerp(t *testing.T) {
	v := Of(0, 0)
	w := Of(2, 4)
	mid := Lerp(v, w, 0.5)
	if !mid.Equal(Of(1, 2)) {
		t.Errorf("Lerp = %v", mid)
	}
	if !Lerp(v, w, 0).Equal(v) || !Lerp(v, w, 1).Equal(w) {
		t.Error("Lerp endpoints incorrect")
	}
}

func TestEqualAndApproxEqual(t *testing.T) {
	if Of(1, 2).Equal(Of(1, 2, 3)) {
		t.Error("vectors of different dims reported equal")
	}
	if !Of(1, 2).ApproxEqual(Of(1.0000001, 2), 1e-6) {
		t.Error("ApproxEqual too strict")
	}
	if Of(1, 2).ApproxEqual(Of(1.1, 2), 1e-6) {
		t.Error("ApproxEqual too lax")
	}
	if Of(1, 2).ApproxEqual(Of(1), 1) {
		t.Error("ApproxEqual must reject dim mismatch")
	}
}

func TestStringAndParse(t *testing.T) {
	v := Of(0.5, -1.25, 3)
	s := v.String()
	parsed, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	if !parsed.ApproxEqual(v, 1e-12) {
		t.Errorf("round trip = %v, want %v", parsed, v)
	}
	for _, in := range []string{"1 2 3", "(1,2,3)", "[1, 2, 3]"} {
		got, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		if !got.Equal(Of(1, 2, 3)) {
			t.Errorf("Parse(%q) = %v", in, got)
		}
	}
	if _, err := Parse(""); err == nil {
		t.Error("Parse of empty string should fail")
	}
	if _, err := Parse("1, two, 3"); err == nil {
		t.Error("Parse of non-numeric input should fail")
	}
}

// Property-based tests. Raw quick-generated floats can be near MaxFloat64
// and overflow to +Inf in squared terms, so clamp each component to a sane
// range first.

func clamp(xs []float64) Vec {
	v := make(Vec, len(xs))
	for i, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			x = 0
		}
		v[i] = math.Mod(x, 1e6)
	}
	return v
}

func TestPropertyTriangleInequality(t *testing.T) {
	f := func(a, b, c [4]float64) bool {
		va, vb, vc := clamp(a[:]), clamp(b[:]), clamp(c[:])
		return Distance(va, vc) <= Distance(va, vb)+Distance(vb, vc)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDistanceSymmetry(t *testing.T) {
	f := func(a, b [3]float64) bool {
		va, vb := clamp(a[:]), clamp(b[:])
		return almostEqual(Distance(va, vb), Distance(vb, va), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyNormOrdering(t *testing.T) {
	// For any vector, Linf <= L2 <= L1.
	f := func(a [5]float64) bool {
		v := clamp(a[:])
		linf := v.NormLp(math.Inf(1))
		l2 := v.Norm2()
		l1 := v.NormLp(1)
		return linf <= l2*(1+1e-12)+1e-9 && l2 <= l1*(1+1e-12)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDotCauchySchwarz(t *testing.T) {
	f := func(a, b [4]float64) bool {
		va, vb := clamp(a[:]), clamp(b[:])
		return math.Abs(va.Dot(vb)) <= va.Norm2()*vb.Norm2()*(1+1e-12)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyAddScaledMatchesAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		d := 1 + rng.Intn(6)
		v, w := New(d), New(d)
		for j := 0; j < d; j++ {
			v[j] = rng.NormFloat64()
			w[j] = rng.NormFloat64()
		}
		alpha := rng.NormFloat64()
		want := v.Add(w.Scaled(alpha))
		got := v.Clone()
		got.AddScaled(alpha, w)
		if !got.ApproxEqual(want, 1e-12) {
			t.Fatalf("AddScaled mismatch: got %v want %v", got, want)
		}
	}
}

func BenchmarkSqDistance8(b *testing.B) {
	v, w := New(8), New(8)
	for i := range v {
		v[i] = float64(i)
		w[i] = float64(i) * 0.5
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = SqDistance(v, w)
	}
}

func BenchmarkAddScaled8(b *testing.B) {
	v, w := New(8), New(8)
	for i := range v {
		w[i] = float64(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.AddScaled(0.001, w)
	}
}
