package vector

// Flat (struct-of-arrays) kernels over row-major matrices. The prototype
// store in internal/core packs all K prototypes into one contiguous
// []float64 of K rows × d columns; the kernels below scan it without
// allocating, without pointer chasing, and without taking a square root per
// candidate — the winner search of Eq. (5) only needs the argmin of the
// squared L2 distance, which is monotone in the true distance.

// SqDistanceFlat returns the squared L2 distance between two equal-length
// slices. It is the 4-way unrolled counterpart of SqDistance for the flat
// prototype store hot path. The four partial sums reassociate the
// accumulation, so the result may differ from SqDistance in the final ulps
// (callers comparing against the sequential kernel must use a tolerance).
func SqDistanceFlat(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(dimError("SqDistanceFlat", len(a), len(b)))
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	return (s0 + s1) + (s2 + s3)
}

// SqDistanceWithin computes the squared L2 distance between a and b with an
// early cutoff: it reports within=false as soon as the partial sum of
// squares (a lower bound on the full distance) exceeds cutoffSq, in which
// case the returned value is the partial sum, not the full distance. When
// within is true the returned value is the exact squared distance and it is
// at most cutoffSq.
func SqDistanceWithin(a, b []float64, cutoffSq float64) (float64, bool) {
	if len(a) != len(b) {
		panic(dimError("SqDistanceWithin", len(a), len(b)))
	}
	var s float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s += (d0*d0 + d1*d1) + (d2*d2 + d3*d3)
		if s > cutoffSq {
			return s, false
		}
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s, s <= cutoffSq
}

// AppendWithin appends base+k to out for every row k of the flat row-major
// matrix whose squared L2 distance to q is at most cutoffSq, and returns the
// extended slice. It is the range-scan primitive of the grid's budget
// fallback; AppendWithinIDs is its reordered-matrix variant for the k-d
// tree's leaf scans. Each row runs through the unrolled partial-distance
// kernel (SqDistanceWithin), so a row whose leading components already
// exceed the cutoff is abandoned mid-row.
func AppendWithin(flat []float64, d int, q []float64, cutoffSq float64, base int, out []int) []int {
	if d <= 0 {
		panic("vector: AppendWithin requires positive dimension")
	}
	if len(q) != d {
		panic(dimError("AppendWithin", len(q), d))
	}
	rows := len(flat) / d
	for k := 0; k < rows; k++ {
		if _, within := SqDistanceWithin(flat[k*d:(k+1)*d], q, cutoffSq); within {
			out = append(out, base+k)
		}
	}
	return out
}

// AppendWithinIDs is AppendWithin for reordered matrices: row k's reported
// index is ids[k] instead of base+k. The k-d tree epoch stores its stale rows
// leaf-contiguously in build order, so a leaf scan maps its hits back to
// prototype ids through this variant.
func AppendWithinIDs(flat []float64, d int, q []float64, cutoffSq float64, ids []int32, out []int) []int {
	if d <= 0 {
		panic("vector: AppendWithinIDs requires positive dimension")
	}
	if len(q) != d {
		panic(dimError("AppendWithinIDs", len(q), d))
	}
	rows := len(flat) / d
	if len(ids) < rows {
		panic("vector: AppendWithinIDs id table shorter than the matrix")
	}
	for k := 0; k < rows; k++ {
		if _, within := SqDistanceWithin(flat[k*d:(k+1)*d], q, cutoffSq); within {
			out = append(out, int(ids[k]))
		}
	}
	return out
}

// SqDistanceToBox returns the squared L2 distance from q to the axis-aligned
// box [lo, hi] — zero when q lies inside. It is the subtree lower bound of
// the k-d tree traversal: no point inside the box can be closer to q.
func SqDistanceToBox(q, lo, hi []float64) float64 {
	if len(q) != len(lo) || len(q) != len(hi) {
		panic(dimError("SqDistanceToBox", len(q), len(lo)))
	}
	var s float64
	for i, v := range q {
		if d := lo[i] - v; d > 0 {
			s += d * d
		} else if d := v - hi[i]; d > 0 {
			s += d * d
		}
	}
	return s
}

// ArgminSqDistance scans the row-major flat matrix (len(flat)/d rows of
// dimension d) and returns the index of the row closest to q together with
// the squared L2 distance to it. Ties are broken toward the lowest row
// index, matching a first-strictly-smaller linear scan. It returns (-1, +Inf
// equivalent) semantics as (-1, 0) when the matrix is empty.
//
// Common widths dispatch to fully unrolled kernels (constant loop bounds let
// the compiler eliminate every bounds check and keep q in registers) that
// also abandon a row once its partial sum already exceeds the best: the
// partial sum of squares is a lower bound on the full squared distance, so a
// pruned row can never have won, and a row tying the best is skipped by the
// strict comparison either way — the result is identical to the plain scan.
func ArgminSqDistance(flat []float64, d int, q []float64) (int, float64) {
	if d <= 0 {
		panic("vector: ArgminSqDistance requires positive dimension")
	}
	if len(q) != d {
		panic(dimError("ArgminSqDistance", len(q), d))
	}
	if len(flat)%d != 0 {
		panic("vector: ArgminSqDistance flat length not a multiple of dimension")
	}
	rows := len(flat) / d
	if rows == 0 {
		return -1, 0
	}
	return argminSeeded(flat, d, q, 0, SqDistanceFlat(flat[:d], q))
}

// ArgminSqDistanceSeeded is ArgminSqDistance initialized with a known
// candidate (row seedIdx at squared distance seedSq): rows whose partial sum
// already exceeds the running best are abandoned early, so a good seed —
// e.g. from a projection or spatial index — lets the scan skip most of every
// row while remaining exact. On ties with the seed the seed wins, which
// satisfies the winner contract (any index at the minimum distance).
func ArgminSqDistanceSeeded(flat []float64, d int, q []float64, seedIdx int, seedSq float64) (int, float64) {
	if d <= 0 {
		panic("vector: ArgminSqDistanceSeeded requires positive dimension")
	}
	if len(q) != d {
		panic(dimError("ArgminSqDistanceSeeded", len(q), d))
	}
	if len(flat)%d != 0 {
		panic("vector: ArgminSqDistanceSeeded flat length not a multiple of dimension")
	}
	if len(flat) == 0 {
		return -1, 0
	}
	return argminSeeded(flat, d, q, seedIdx, seedSq)
}

// argminSeeded scans every row with the running best initialized to
// (best, bestSq), dispatching to the unrolled width specializations.
func argminSeeded(flat []float64, d int, q []float64, best int, bestSq float64) (int, float64) {
	switch d {
	case 3:
		return argmin3(flat, q, best, bestSq)
	case 4:
		return argmin4(flat, q, best, bestSq)
	case 5:
		return argmin5(flat, q, best, bestSq)
	case 6:
		return argmin6(flat, q, best, bestSq)
	case 7:
		return argmin7(flat, q, best, bestSq)
	case 8:
		return argmin8(flat, q, best, bestSq)
	case 9:
		return argmin9(flat, q, best, bestSq)
	}
	rows := len(flat) / d
	for k := 0; k < rows; k++ {
		row := flat[k*d : (k+1)*d : (k+1)*d]
		var s float64
		i := 0
		pruned := false
		for ; i+4 <= d; i += 4 {
			d0 := row[i] - q[i]
			d1 := row[i+1] - q[i+1]
			d2 := row[i+2] - q[i+2]
			d3 := row[i+3] - q[i+3]
			s += (d0*d0 + d1*d1) + (d2*d2 + d3*d3)
			if s >= bestSq {
				pruned = true
				break
			}
		}
		if pruned {
			continue
		}
		for ; i < d; i++ {
			dd := row[i] - q[i]
			s += dd * dd
		}
		if s < bestSq {
			best, bestSq = k, s
		}
	}
	return best, bestSq
}

// argmin3 is the width-3 specialization ([x1, x2, θ] query spaces, the
// paper's d=2 workloads).
func argmin3(flat, q []float64, best int, bestSq float64) (int, float64) {
	q0, q1, q2 := q[0], q[1], q[2]
	for k, base := 0, 0; base+3 <= len(flat); k, base = k+1, base+3 {
		row := flat[base : base+3 : base+3]
		d0 := row[0] - q0
		d1 := row[1] - q1
		d2 := row[2] - q2
		if sq := (d0*d0 + d1*d1) + d2*d2; sq < bestSq {
			best, bestSq = k, sq
		}
	}
	return best, bestSq
}

// argmin4 is the width-4 specialization (d=3 query spaces).
func argmin4(flat, q []float64, best int, bestSq float64) (int, float64) {
	q0, q1, q2, q3 := q[0], q[1], q[2], q[3]
	for k, base := 0, 0; base+4 <= len(flat); k, base = k+1, base+4 {
		row := flat[base : base+4 : base+4]
		d0 := row[0] - q0
		d1 := row[1] - q1
		d2 := row[2] - q2
		d3 := row[3] - q3
		if sq := (d0*d0 + d1*d1) + (d2*d2 + d3*d3); sq < bestSq {
			best, bestSq = k, sq
		}
	}
	return best, bestSq
}

// argmin5 is the width-5 specialization (d=4 query spaces).
func argmin5(flat, q []float64, best int, bestSq float64) (int, float64) {
	q0, q1, q2, q3, q4 := q[0], q[1], q[2], q[3], q[4]
	for k, base := 0, 0; base+5 <= len(flat); k, base = k+1, base+5 {
		row := flat[base : base+5 : base+5]
		d0 := row[0] - q0
		d1 := row[1] - q1
		d2 := row[2] - q2
		d3 := row[3] - q3
		d4 := row[4] - q4
		if sq := (d0*d0 + d1*d1) + (d2*d2 + d3*d3) + d4*d4; sq < bestSq {
			best, bestSq = k, sq
		}
	}
	return best, bestSq
}

// argmin6 is the width-6 specialization (d=5 query spaces).
func argmin6(flat, q []float64, best int, bestSq float64) (int, float64) {
	q0, q1, q2, q3, q4, q5 := q[0], q[1], q[2], q[3], q[4], q[5]
	for k, base := 0, 0; base+6 <= len(flat); k, base = k+1, base+6 {
		row := flat[base : base+6 : base+6]
		d0 := row[0] - q0
		d1 := row[1] - q1
		d2 := row[2] - q2
		d3 := row[3] - q3
		d4 := row[4] - q4
		d5 := row[5] - q5
		if sq := (d0*d0 + d1*d1) + (d2*d2 + d3*d3) + (d4*d4 + d5*d5); sq < bestSq {
			best, bestSq = k, sq
		}
	}
	return best, bestSq
}

// argmin7 is the width-7 specialization (d=6 query spaces) with a partial-
// distance cutoff after the first four components.
func argmin7(flat, q []float64, best int, bestSq float64) (int, float64) {
	q0, q1, q2, q3, q4, q5, q6 := q[0], q[1], q[2], q[3], q[4], q[5], q[6]
	for k, base := 0, 0; base+7 <= len(flat); k, base = k+1, base+7 {
		row := flat[base : base+7 : base+7]
		d0 := row[0] - q0
		d1 := row[1] - q1
		d2 := row[2] - q2
		d3 := row[3] - q3
		s := (d0*d0 + d1*d1) + (d2*d2 + d3*d3)
		if s >= bestSq {
			continue
		}
		d4 := row[4] - q4
		d5 := row[5] - q5
		d6 := row[6] - q6
		if sq := s + (d4*d4 + d5*d5) + d6*d6; sq < bestSq {
			best, bestSq = k, sq
		}
	}
	return best, bestSq
}

// argmin8 is the width-8 specialization (d=7 query spaces) with a partial-
// distance cutoff after the first four components.
func argmin8(flat, q []float64, best int, bestSq float64) (int, float64) {
	q0, q1, q2, q3, q4, q5, q6, q7 := q[0], q[1], q[2], q[3], q[4], q[5], q[6], q[7]
	for k, base := 0, 0; base+8 <= len(flat); k, base = k+1, base+8 {
		row := flat[base : base+8 : base+8]
		d0 := row[0] - q0
		d1 := row[1] - q1
		d2 := row[2] - q2
		d3 := row[3] - q3
		s := (d0*d0 + d1*d1) + (d2*d2 + d3*d3)
		if s >= bestSq {
			continue
		}
		d4 := row[4] - q4
		d5 := row[5] - q5
		d6 := row[6] - q6
		d7 := row[7] - q7
		if sq := s + (d4*d4 + d5*d5) + (d6*d6 + d7*d7); sq < bestSq {
			best, bestSq = k, sq
		}
	}
	return best, bestSq
}

// argmin9 is the width-9 specialization (d=8 query spaces) with a partial-
// distance cutoff after the first four components.
func argmin9(flat, q []float64, best int, bestSq float64) (int, float64) {
	q0, q1, q2, q3, q4, q5, q6, q7, q8 := q[0], q[1], q[2], q[3], q[4], q[5], q[6], q[7], q[8]
	for k, base := 0, 0; base+9 <= len(flat); k, base = k+1, base+9 {
		row := flat[base : base+9 : base+9]
		d0 := row[0] - q0
		d1 := row[1] - q1
		d2 := row[2] - q2
		d3 := row[3] - q3
		s := (d0*d0 + d1*d1) + (d2*d2 + d3*d3)
		if s >= bestSq {
			continue
		}
		d4 := row[4] - q4
		d5 := row[5] - q5
		d6 := row[6] - q6
		d7 := row[7] - q7
		d8 := row[8] - q8
		if sq := s + (d4*d4 + d5*d5) + (d6*d6 + d7*d7) + d8*d8; sq < bestSq {
			best, bestSq = k, sq
		}
	}
	return best, bestSq
}
