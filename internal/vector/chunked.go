package vector

// Chunked matrices: the copy-on-write prototype store keeps its rows in
// fixed-size chunks (ChunkRows rows each) so a writer can republish after a
// single-row update by copying one chunk instead of the whole matrix. The
// kernels below run the same unrolled argmin scans as the flat kernels, one
// contiguous chunk at a time, so chunking costs the search nothing but a
// per-chunk loop re-entry.

const (
	// ChunkShift is log2 of the chunk row count. 256 rows balances the two
	// publication costs: the per-write chunk copy (256·width floats) against
	// the per-publish chunk-pointer table copy (rows/256 pointers) — see the
	// write-path section of PERFORMANCE.md.
	ChunkShift = 8
	// ChunkRows is the number of rows per chunk.
	ChunkRows = 1 << ChunkShift
	// ChunkMask extracts a row's index within its chunk.
	ChunkMask = ChunkRows - 1
)

// Chunk is one fixed-size block of rows: the first ChunkRows·width values of
// Data are the rows themselves; owners may append additional per-row columns
// after that prefix (the prototype store packs coefficient rows and win
// counts there), which the kernels never touch. Chunks are referenced
// through a pointer so a chunk table costs one word per chunk to copy — the
// table copy is the per-publication price of the copy-on-write store, paid
// on every training pair.
type Chunk struct {
	Data []float64
}

// Chunked is a read-only view of a row-major matrix stored as fixed-size row
// chunks: chunk c holds rows [c·ChunkRows, (c+1)·ChunkRows) flattened into
// the prefix of one contiguous buffer (every chunk is allocated at full
// capacity; Rows bounds the valid rows). The zero value is the empty matrix;
// IsZero distinguishes it from a present-but-empty view.
type Chunked struct {
	width int
	rows  int
	data  []*Chunk
}

// NewChunked wraps an existing chunk table (no copying). Each chunk must hold
// at least ChunkRows·width values, except that the last may be shorter as
// long as it covers rows·width.
func NewChunked(width, rows int, data []*Chunk) Chunked {
	if width <= 0 {
		panic("vector: NewChunked requires positive width")
	}
	if rows < 0 || (rows+ChunkRows-1)/ChunkRows > len(data) {
		panic("vector: NewChunked chunk table too short for row count")
	}
	return Chunked{width: width, rows: rows, data: data}
}

// ChunkedFromFlat copies a flat row-major matrix into freshly allocated
// chunks — the test/bridge constructor, not a hot path.
func ChunkedFromFlat(flat []float64, width int) Chunked {
	if width <= 0 {
		panic("vector: ChunkedFromFlat requires positive width")
	}
	if len(flat)%width != 0 {
		panic("vector: ChunkedFromFlat length not a multiple of width")
	}
	rows := len(flat) / width
	data := make([]*Chunk, (rows+ChunkRows-1)/ChunkRows)
	for c := range data {
		buf := make([]float64, ChunkRows*width)
		copy(buf, flat[c*ChunkRows*width:])
		data[c] = &Chunk{Data: buf}
	}
	return Chunked{width: width, rows: rows, data: data}
}

// Width returns the row width.
func (m Chunked) Width() int { return m.width }

// Rows returns the number of valid rows.
func (m Chunked) Rows() int { return m.rows }

// IsZero reports whether the view is the zero value (no chunk table at all).
func (m Chunked) IsZero() bool { return m.data == nil && m.width == 0 }

// Row returns row i (valid for 0 <= i < Rows()).
func (m Chunked) Row(i int) []float64 {
	j := (i & ChunkMask) * m.width
	return m.data[i>>ChunkShift].Data[j : j+m.width]
}

// chunkSpan returns the flattened valid rows of chunk c: all ChunkRows rows
// for interior chunks, the partial tail for the last.
func (m Chunked) chunkSpan(c int) []float64 {
	rows := m.rows - c<<ChunkShift
	if rows > ChunkRows {
		rows = ChunkRows
	}
	return m.data[c].Data[:rows*m.width]
}

// ArgminSqDistanceChunked returns the index of the row closest to q and the
// squared L2 distance to it, scanning chunk by chunk with the same unrolled
// kernels (and partial-distance pruning) as ArgminSqDistance. Ties break
// toward the lowest row index. Returns (-1, 0) when the matrix has no rows.
func ArgminSqDistanceChunked(m Chunked, q []float64) (int, float64) {
	if m.rows == 0 {
		return -1, 0
	}
	return ArgminSqDistanceChunkedRange(m, q, 0, 0, SqDistanceFlat(m.Row(0), q))
}

// ArgminSqDistanceChunkedSeeded is ArgminSqDistanceChunked initialized with a
// known candidate (row seedIdx at squared distance seedSq; seedIdx < 0 turns
// seedSq into a pure cutoff — only rows strictly below it are reported). On
// ties with the seed the seed wins.
func ArgminSqDistanceChunkedSeeded(m Chunked, q []float64, seedIdx int, seedSq float64) (int, float64) {
	return ArgminSqDistanceChunkedRange(m, q, 0, seedIdx, seedSq)
}

// ArgminSqDistanceChunkedRange scans only rows [lo, Rows()), carrying a
// running best (best < 0 with bestSq = +Inf for none). It is the tail-scan
// primitive of the winner search: rows appended since an index epoch was
// built live in the trailing chunks and are verified here.
func ArgminSqDistanceChunkedRange(m Chunked, q []float64, lo int, best int, bestSq float64) (int, float64) {
	if len(q) != m.width {
		panic(dimError("ArgminSqDistanceChunkedRange", len(q), m.width))
	}
	if lo < 0 {
		lo = 0
	}
	for c := lo >> ChunkShift; c<<ChunkShift < m.rows; c++ {
		base := c << ChunkShift
		span := m.chunkSpan(c)
		if lo > base {
			span = span[(lo-base)*m.width:]
			base = lo
		}
		if li, lsq := argminSeeded(span, m.width, q, -1, bestSq); li >= 0 {
			best, bestSq = base+li, lsq
		}
	}
	return best, bestSq
}
