package vector

import (
	"math"
	"math/rand"
	"testing"
)

func TestSqDistanceFlatMatchesSqDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 16, 31, 64} {
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		want := SqDistance(a, b)
		got := SqDistanceFlat(a, b)
		if math.Abs(got-want) > 1e-12*(1+want) {
			t.Errorf("n=%d: SqDistanceFlat=%v, SqDistance=%v", n, got, want)
		}
	}
}

func TestSqDistanceFlatDimensionMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on dimension mismatch")
		}
	}()
	SqDistanceFlat([]float64{1, 2}, []float64{1})
}

func TestArgminSqDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, d := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 13} {
		for _, rows := range []int{1, 2, 7, 100} {
			flat := make([]float64, rows*d)
			for i := range flat {
				flat[i] = rng.NormFloat64()
			}
			q := make([]float64, d)
			for i := range q {
				q[i] = rng.NormFloat64()
			}
			got, gotSq := ArgminSqDistance(flat, d, q)
			// Brute force with the sequential kernel.
			want, wantSq := 0, math.Inf(1)
			for k := 0; k < rows; k++ {
				if sq := SqDistance(flat[k*d:(k+1)*d], q); sq < wantSq {
					want, wantSq = k, sq
				}
			}
			if got != want && math.Abs(gotSq-wantSq) > 1e-12*(1+wantSq) {
				t.Errorf("d=%d rows=%d: argmin %d (sq %v), want %d (sq %v)", d, rows, got, gotSq, want, wantSq)
			}
		}
	}
}

func TestAppendWithinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, d := range []int{1, 3, 5, 9} {
		for _, rows := range []int{0, 1, 7, 200} {
			flat := make([]float64, rows*d)
			for i := range flat {
				flat[i] = rng.NormFloat64()
			}
			ids := make([]int32, rows)
			for i := range ids {
				ids[i] = int32(1000 + i)
			}
			q := make([]float64, d)
			for i := range q {
				q[i] = rng.NormFloat64()
			}
			cutoffSq := 2 * rng.Float64() * float64(d)
			got := AppendWithin(flat, d, q, cutoffSq, 10, []int{-1})
			gotIDs := AppendWithinIDs(flat, d, q, cutoffSq, ids, nil)
			want := []int{-1} // AppendWithin extends, never resets
			for k := 0; k < rows; k++ {
				if SqDistanceFlat(flat[k*d:(k+1)*d], q) <= cutoffSq {
					want = append(want, 10+k)
				}
			}
			if len(got) != len(want) || len(gotIDs) != len(want)-1 {
				t.Fatalf("d=%d rows=%d: AppendWithin %d hits, AppendWithinIDs %d, want %d",
					d, rows, len(got)-1, len(gotIDs), len(want)-1)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("d=%d rows=%d: AppendWithin[%d]=%d, want %d", d, rows, i, got[i], want[i])
				}
				if i > 0 && gotIDs[i-1] != want[i]+990 {
					t.Fatalf("d=%d rows=%d: AppendWithinIDs[%d]=%d, want %d", d, rows, i-1, gotIDs[i-1], want[i]+990)
				}
			}
		}
	}
}

func TestSqDistanceToBox(t *testing.T) {
	lo := []float64{0, 0, 0}
	hi := []float64{1, 2, 3}
	cases := []struct {
		q    []float64
		want float64
	}{
		{[]float64{0.5, 1, 2}, 0},              // inside
		{[]float64{0, 2, 3}, 0},                // on a corner
		{[]float64{-1, 1, 2}, 1},               // below one axis
		{[]float64{2, 3, 5}, 1 + 1 + 4},        // above all axes
		{[]float64{-0.5, 2.5, 1}, 0.25 + 0.25}, // mixed sides
	}
	for _, tc := range cases {
		if got := SqDistanceToBox(tc.q, lo, hi); math.Abs(got-tc.want) > 1e-15 {
			t.Errorf("SqDistanceToBox(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	// Brute-force cross-check: the box distance is the min squared distance
	// to any point of the box, which for axis-aligned boxes is attained at
	// the per-axis clamp.
	rng := rand.New(rand.NewSource(18))
	for trial := 0; trial < 200; trial++ {
		q := []float64{4 * rng.NormFloat64(), 4 * rng.NormFloat64(), 4 * rng.NormFloat64()}
		clamped := make([]float64, 3)
		for j := range clamped {
			clamped[j] = math.Max(lo[j], math.Min(hi[j], q[j]))
		}
		want := SqDistanceFlat(clamped, q)
		if got := SqDistanceToBox(q, lo, hi); math.Abs(got-want) > 1e-12*(1+want) {
			t.Fatalf("trial %d: SqDistanceToBox(%v) = %v, clamp says %v", trial, q, got, want)
		}
	}
}

func TestArgminSqDistanceTieBreaksLow(t *testing.T) {
	// Two identical rows: the scan must return the first.
	flat := []float64{1, 2, 3, 9, 9, 9, 1, 2, 3}
	idx, sq := ArgminSqDistance(flat, 3, []float64{1, 2, 3})
	if idx != 0 || sq != 0 {
		t.Errorf("tie-break: got (%d, %v), want (0, 0)", idx, sq)
	}
}

func TestArgminSqDistanceEmpty(t *testing.T) {
	idx, _ := ArgminSqDistance(nil, 4, make([]float64, 4))
	if idx != -1 {
		t.Errorf("empty matrix: got index %d, want -1", idx)
	}
}

func BenchmarkSqDistanceFlat8(b *testing.B) {
	v := make([]float64, 8)
	w := make([]float64, 8)
	for i := range v {
		v[i] = float64(i)
		w[i] = float64(i) * 1.5
	}
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += SqDistanceFlat(v, w)
	}
	_ = sink
}

func BenchmarkArgminSqDistance1000x9(b *testing.B) {
	const rows, d = 1000, 9
	flat := make([]float64, rows*d)
	rng := rand.New(rand.NewSource(1))
	for i := range flat {
		flat[i] = rng.Float64()
	}
	q := make([]float64, d)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q[0] = float64(i % 17)
		if idx, _ := ArgminSqDistance(flat, d, q); idx < 0 {
			b.Fatal("no winner")
		}
	}
}

func BenchmarkArgminSeededOracle1000x9(b *testing.B) {
	const rows, d = 1000, 9
	flat := make([]float64, rows*d)
	rng := rand.New(rand.NewSource(1))
	for i := range flat {
		flat[i] = rng.Float64()
	}
	qs := make([][]float64, 64)
	seeds := make([]int, 64)
	seedSqs := make([]float64, 64)
	for t := range qs {
		q := make([]float64, d)
		for i := range q {
			q[i] = rng.Float64()
		}
		qs[t] = q
		seeds[t], seedSqs[t] = ArgminSqDistance(flat, d, q)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := i % len(qs)
		if idx, _ := ArgminSqDistanceSeeded(flat, d, qs[t], seeds[t], seedSqs[t]); idx < 0 {
			b.Fatal("no winner")
		}
	}
}
