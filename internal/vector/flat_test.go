package vector

import (
	"math"
	"math/rand"
	"testing"
)

func TestSqDistanceFlatMatchesSqDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 16, 31, 64} {
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		want := SqDistance(a, b)
		got := SqDistanceFlat(a, b)
		if math.Abs(got-want) > 1e-12*(1+want) {
			t.Errorf("n=%d: SqDistanceFlat=%v, SqDistance=%v", n, got, want)
		}
	}
}

func TestSqDistanceFlatDimensionMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on dimension mismatch")
		}
	}()
	SqDistanceFlat([]float64{1, 2}, []float64{1})
}

func TestArgminSqDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, d := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 13} {
		for _, rows := range []int{1, 2, 7, 100} {
			flat := make([]float64, rows*d)
			for i := range flat {
				flat[i] = rng.NormFloat64()
			}
			q := make([]float64, d)
			for i := range q {
				q[i] = rng.NormFloat64()
			}
			got, gotSq := ArgminSqDistance(flat, d, q)
			// Brute force with the sequential kernel.
			want, wantSq := 0, math.Inf(1)
			for k := 0; k < rows; k++ {
				if sq := SqDistance(flat[k*d:(k+1)*d], q); sq < wantSq {
					want, wantSq = k, sq
				}
			}
			if got != want && math.Abs(gotSq-wantSq) > 1e-12*(1+wantSq) {
				t.Errorf("d=%d rows=%d: argmin %d (sq %v), want %d (sq %v)", d, rows, got, gotSq, want, wantSq)
			}
		}
	}
}

func TestArgminSqDistanceTieBreaksLow(t *testing.T) {
	// Two identical rows: the scan must return the first.
	flat := []float64{1, 2, 3, 9, 9, 9, 1, 2, 3}
	idx, sq := ArgminSqDistance(flat, 3, []float64{1, 2, 3})
	if idx != 0 || sq != 0 {
		t.Errorf("tie-break: got (%d, %v), want (0, 0)", idx, sq)
	}
}

func TestArgminSqDistanceEmpty(t *testing.T) {
	idx, _ := ArgminSqDistance(nil, 4, make([]float64, 4))
	if idx != -1 {
		t.Errorf("empty matrix: got index %d, want -1", idx)
	}
}

func BenchmarkSqDistanceFlat8(b *testing.B) {
	v := make([]float64, 8)
	w := make([]float64, 8)
	for i := range v {
		v[i] = float64(i)
		w[i] = float64(i) * 1.5
	}
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += SqDistanceFlat(v, w)
	}
	_ = sink
}

func BenchmarkArgminSqDistance1000x9(b *testing.B) {
	const rows, d = 1000, 9
	flat := make([]float64, rows*d)
	rng := rand.New(rand.NewSource(1))
	for i := range flat {
		flat[i] = rng.Float64()
	}
	q := make([]float64, d)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q[0] = float64(i % 17)
		if idx, _ := ArgminSqDistance(flat, d, q); idx < 0 {
			b.Fatal("no winner")
		}
	}
}

func BenchmarkArgminSeededOracle1000x9(b *testing.B) {
	const rows, d = 1000, 9
	flat := make([]float64, rows*d)
	rng := rand.New(rand.NewSource(1))
	for i := range flat {
		flat[i] = rng.Float64()
	}
	qs := make([][]float64, 64)
	seeds := make([]int, 64)
	seedSqs := make([]float64, 64)
	for t := range qs {
		q := make([]float64, d)
		for i := range q {
			q[i] = rng.Float64()
		}
		qs[t] = q
		seeds[t], seedSqs[t] = ArgminSqDistance(flat, d, q)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := i % len(qs)
		if idx, _ := ArgminSqDistanceSeeded(flat, d, qs[t], seeds[t], seedSqs[t]); idx < 0 {
			b.Fatal("no winner")
		}
	}
}
