package vector

import "math"

// Masked sentinel rows: the bounded-capacity prototype store tombstones an
// evicted row in place (row indices must stay stable for pinned snapshot
// views), and the kernels in this package must never return a tombstoned row
// from a search. Rather than threading a skip-list or a per-row branch
// through every unrolled scan, a masked row is written so the existing
// arithmetic excludes it naturally: every component is +Inf, so its distance
// to any finite query is +Inf, which
//
//   - never wins an argmin (every running-best comparison in this package is
//     strict, and +Inf < x is false for every x including +Inf), and
//   - never passes a finite within-cutoff (the partial-distance kernels
//     abandon the row on its first component).
//
// The masking therefore costs the hot paths nothing — no extra branch, no
// extra load — and is exact by the same argument as the partial-distance
// cutoff: a row at infinite distance cannot be a member of any finite-radius
// result set. Callers that need a finite-valued sentinel in a trailing
// column (the prototype store keeps θ = −1 there so tombstones are
// detectable without an Inf comparison) mask only the leading columns;
// masking any single column already puts the row at infinite distance.
//
// The one cutoff that admits a masked row is +Inf itself (Inf ≤ Inf):
// callers that pass an unbounded cutoff to SqDistanceWithin must not treat
// "within" as "live". The searches in this package only form cutoffs from
// finite radii and running bests, so the case does not arise internally.

// MaskRow overwrites every component of row with +Inf, making the row
// transparent to every distance kernel in this package: it cannot win an
// argmin and cannot fall within any finite radius.
func MaskRow(row []float64) {
	for i := range row {
		row[i] = math.Inf(1)
	}
}

// RowMasked reports whether row was masked by MaskRow (or otherwise carries
// a +Inf leading component, which is equally transparent to the kernels).
// The empty row is not masked.
func RowMasked(row []float64) bool {
	return len(row) > 0 && math.IsInf(row[0], 1)
}
