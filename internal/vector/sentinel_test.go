package vector

import (
	"math"
	"math/rand"
	"testing"
)

// TestMaskedRowsTransparent is the sentinel exactness property: for random
// matrices with a random subset of rows masked, every search kernel must
// return exactly what a reference scan over the unmasked rows returns — a
// masked row never wins an argmin, never appears in a range result, and
// never perturbs a running best.
func TestMaskedRowsTransparent(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, d := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 12} {
		for trial := 0; trial < 40; trial++ {
			rows := 1 + rng.Intn(300)
			flat := make([]float64, rows*d)
			for i := range flat {
				flat[i] = rng.NormFloat64()
			}
			masked := make([]bool, rows)
			anyLive := false
			for k := 0; k < rows; k++ {
				if rng.Float64() < 0.3 {
					masked[k] = true
					MaskRow(flat[k*d : (k+1)*d])
				} else {
					anyLive = true
				}
			}
			q := make([]float64, d)
			for j := range q {
				q[j] = rng.NormFloat64()
			}

			// Reference: the same argmin kernel over a compacted matrix of
			// only the live rows (identical width dispatch, hence identical
			// float association), with indices mapped back.
			var liveFlat []float64
			var liveIdx []int
			for k := 0; k < rows; k++ {
				if masked[k] {
					continue
				}
				liveFlat = append(liveFlat, flat[k*d:(k+1)*d]...)
				liveIdx = append(liveIdx, k)
			}
			wantIdx, wantSq := -1, math.Inf(1)
			if len(liveIdx) > 0 {
				ci, csq := ArgminSqDistanceSeeded(liveFlat, d, q, -1, math.Inf(1))
				wantIdx, wantSq = liveIdx[ci], csq
			}

			gotIdx, gotSq := ArgminSqDistanceSeeded(flat, d, q, -1, math.Inf(1))
			if anyLive && (gotIdx != wantIdx || gotSq != wantSq) {
				t.Fatalf("d=%d rows=%d: argmin over masked matrix = (%d, %v), reference over live rows = (%d, %v)",
					d, rows, gotIdx, gotSq, wantIdx, wantSq)
			}
			if !anyLive && gotIdx >= 0 {
				t.Fatalf("d=%d rows=%d: all rows masked but argmin returned row %d", d, rows, gotIdx)
			}

			// Chunked variant must agree on the same data.
			cm := ChunkedFromFlat(flat, d)
			cIdx, cSq := ArgminSqDistanceChunkedSeeded(cm, q, -1, math.Inf(1))
			if anyLive && (cIdx != wantIdx || cSq != wantSq) {
				t.Fatalf("d=%d rows=%d: chunked argmin = (%d, %v), reference = (%d, %v)", d, rows, cIdx, cSq, wantIdx, wantSq)
			}

			// Range: masked rows must be absent for any finite radius.
			r := 0.5 + 2*rng.Float64()
			got := AppendWithin(flat, d, q, r*r, 0, nil)
			seen := map[int]bool{}
			for _, id := range got {
				if masked[id] {
					t.Fatalf("d=%d: masked row %d reported within radius %v", d, id, r)
				}
				seen[id] = true
			}
			for k := 0; k < rows; k++ {
				if !masked[k] && SqDistanceFlat(flat[k*d:(k+1)*d], q) <= r*r && !seen[k] {
					t.Fatalf("d=%d: live row %d within radius %v missing from range result", d, k, r)
				}
			}

			// SqDistanceWithin on a masked row with a finite cutoff.
			if k := rng.Intn(rows); masked[k] {
				if _, within := SqDistanceWithin(flat[k*d:(k+1)*d], q, 1e300); within {
					t.Fatalf("d=%d: masked row passed a finite within-cutoff", d)
				}
			}
		}
	}
}

// TestRowMasked covers the sentinel predicate itself.
func TestRowMasked(t *testing.T) {
	row := []float64{1, 2, 3}
	if RowMasked(row) {
		t.Fatal("finite row reported masked")
	}
	MaskRow(row)
	if !RowMasked(row) {
		t.Fatal("masked row not detected")
	}
	for _, v := range row {
		if !math.IsInf(v, 1) {
			t.Fatalf("MaskRow left component %v", v)
		}
	}
	if RowMasked(nil) {
		t.Fatal("empty row reported masked")
	}
	// Partial masking (leading columns only) still trips the predicate and
	// still puts the row at infinite distance.
	part := []float64{1, 2, -1}
	MaskRow(part[:2])
	if !RowMasked(part) {
		t.Fatal("partially masked row not detected")
	}
	if sq := SqDistanceFlat(part, []float64{0, 0, 0}); !math.IsInf(sq, 1) {
		t.Fatalf("partially masked row at finite distance %v", sq)
	}
}
