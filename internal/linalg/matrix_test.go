package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMatrixAndAccessors(t *testing.T) {
	m := NewMatrix(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape = %dx%d", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Errorf("At(1,2) = %v", m.At(1, 2))
	}
	if m.At(0, 0) != 0 {
		t.Errorf("zero value not zero")
	}
}

func TestNewMatrixNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(-1, 2)
}

func TestIndexOutOfRangePanics(t *testing.T) {
	m := NewMatrix(2, 2)
	cases := []func(){
		func() { m.At(2, 0) },
		func() { m.At(0, -1) },
		func() { m.Set(5, 0, 1) },
		func() { m.Row(2) },
		func() { m.Col(-1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestNewMatrixFromRows(t *testing.T) {
	m, err := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %v", m.At(1, 0))
	}
	if _, err := NewMatrixFromRows([][]float64{{1, 2}, {3}}); !errors.Is(err, ErrShape) {
		t.Errorf("ragged rows: err = %v, want ErrShape", err)
	}
	empty, err := NewMatrixFromRows(nil)
	if err != nil || empty.Rows() != 0 {
		t.Errorf("empty input: %v %v", empty, err)
	}
}

func TestRowColClone(t *testing.T) {
	m, _ := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	row := m.Row(1)
	if row[2] != 6 {
		t.Errorf("Row = %v", row)
	}
	row[0] = 99
	if m.At(1, 0) == 99 {
		t.Error("Row must return a copy")
	}
	col := m.Col(1)
	if col[0] != 2 || col[1] != 5 {
		t.Errorf("Col = %v", col)
	}
	c := m.Clone()
	c.Set(0, 0, -1)
	if m.At(0, 0) == -1 {
		t.Error("Clone must not share storage")
	}
}

func TestTranspose(t *testing.T) {
	m, _ := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("transpose shape %dx%d", tr.Rows(), tr.Cols())
	}
	if tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Errorf("transpose values wrong:\n%v", tr)
	}
	if !m.T().T().ApproxEqual(m, 0) {
		t.Error("double transpose should be identity")
	}
}

func TestMul(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := NewMatrixFromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := NewMatrixFromRows([][]float64{{19, 22}, {43, 50}})
	if !c.ApproxEqual(want, 1e-12) {
		t.Errorf("Mul =\n%v", c)
	}
	if _, err := a.Mul(NewMatrix(3, 2)); !errors.Is(err, ErrShape) {
		t.Errorf("shape mismatch error = %v", err)
	}
	id := Identity(2)
	ai, _ := a.Mul(id)
	if !ai.ApproxEqual(a, 0) {
		t.Error("A*I != A")
	}
}

func TestMulVecAddScale(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	y, err := a.MulVec([]float64{1, 1})
	if err != nil || y[0] != 3 || y[1] != 7 {
		t.Errorf("MulVec = %v, %v", y, err)
	}
	if _, err := a.MulVec([]float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("MulVec shape error = %v", err)
	}
	sum, err := a.Add(a)
	if err != nil || sum.At(1, 1) != 8 {
		t.Errorf("Add = %v, %v", sum, err)
	}
	if _, err := a.Add(NewMatrix(1, 1)); !errors.Is(err, ErrShape) {
		t.Errorf("Add shape error = %v", err)
	}
	sc := a.Scale(2)
	if sc.At(0, 1) != 4 || a.At(0, 1) != 2 {
		t.Errorf("Scale wrong or mutated receiver")
	}
}

func TestGramAndMulTVec(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	g := Gram(a)
	want, _ := a.T().Mul(a)
	if !g.ApproxEqual(want, 1e-12) {
		t.Errorf("Gram =\n%v\nwant\n%v", g, want)
	}
	aty, err := MulTVec(a, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if aty[0] != 9 || aty[1] != 12 {
		t.Errorf("MulTVec = %v", aty)
	}
	if _, err := MulTVec(a, []float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("MulTVec shape error = %v", err)
	}
}

func TestCholeskySolve(t *testing.T) {
	// SPD matrix.
	a, _ := NewMatrixFromRows([][]float64{
		{4, 2, 0},
		{2, 5, 1},
		{0, 1, 3},
	})
	chol, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	l := chol.L()
	llt, _ := l.Mul(l.T())
	if !llt.ApproxEqual(a, 1e-10) {
		t.Errorf("L*Lt =\n%v", llt)
	}
	xTrue := []float64{1, -2, 3}
	b, _ := a.MulVec(xTrue)
	x, err := chol.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-10 {
			t.Errorf("x = %v, want %v", x, xTrue)
			break
		}
	}
	if _, err := chol.Solve([]float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("Solve shape error = %v", err)
	}
}

func TestCholeskyRejectsNonSPD(t *testing.T) {
	notSPD, _ := NewMatrixFromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := NewCholesky(notSPD); !errors.Is(err, ErrNotSPD) {
		t.Errorf("err = %v, want ErrNotSPD", err)
	}
	if _, err := NewCholesky(NewMatrix(2, 3)); !errors.Is(err, ErrShape) {
		t.Errorf("non-square err = %v, want ErrShape", err)
	}
}

func TestQRSolve(t *testing.T) {
	// Overdetermined consistent system.
	a, _ := NewMatrixFromRows([][]float64{
		{1, 0},
		{0, 1},
		{1, 1},
	})
	xTrue := []float64{2, -1}
	b, _ := a.MulVec(xTrue)
	qr, err := NewQR(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := qr.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-10 {
			t.Fatalf("x = %v, want %v", x, xTrue)
		}
	}
	if _, err := NewQR(NewMatrix(1, 2)); !errors.Is(err, ErrShape) {
		t.Errorf("wide matrix err = %v", err)
	}
	if _, err := qr.Solve([]float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("rhs length err = %v", err)
	}
}

func TestQRRankDeficient(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{
		{1, 2},
		{2, 4},
		{3, 6},
	})
	qr, err := NewQR(a)
	if err == nil {
		// The second column may not be exactly zero below the diagonal due to
		// rounding; in that case Solve must detect the tiny pivot.
		if _, err := qr.Solve([]float64{1, 2, 3}); err == nil {
			t.Error("expected rank-deficiency to be reported")
		}
		return
	}
	if !errors.Is(err, ErrRankDeficient) {
		t.Errorf("err = %v, want ErrRankDeficient", err)
	}
}

func TestSolveLeastSquaresMatchesKnownFit(t *testing.T) {
	// y = 3 + 2*x fitted from noiseless samples.
	xs := []float64{0, 1, 2, 3, 4}
	a := NewMatrix(len(xs), 2)
	b := make([]float64, len(xs))
	for i, x := range xs {
		a.Set(i, 0, 1)
		a.Set(i, 1, x)
		b[i] = 3 + 2*x
	}
	coef, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(coef[0]-3) > 1e-9 || math.Abs(coef[1]-2) > 1e-9 {
		t.Errorf("coef = %v", coef)
	}
	if _, err := SolveLeastSquares(NewMatrix(1, 3), []float64{1}); err == nil {
		t.Error("underdetermined system should fail")
	}
	if _, err := SolveLeastSquares(NewMatrix(2, 2), []float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("shape error = %v", err)
	}
}

func TestSolveLeastSquaresNearCollinear(t *testing.T) {
	// Two nearly identical columns; the ridge/QR fallback must keep the
	// solution finite and the residual small.
	rng := rand.New(rand.NewSource(3))
	n := 50
	a := NewMatrix(n, 3)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		x := rng.Float64()
		a.Set(i, 0, 1)
		a.Set(i, 1, x)
		a.Set(i, 2, x*(1+1e-9)) // nearly collinear with column 1
		b[i] = 1 + 2*x
	}
	coef, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		pred := coef[0] + coef[1]*a.At(i, 1) + coef[2]*a.At(i, 2)
		if math.Abs(pred-b[i]) > 1e-4 {
			t.Fatalf("prediction %d off: %v vs %v (coef %v)", i, pred, b[i], coef)
		}
	}
}

func TestFitOLSExactPlane(t *testing.T) {
	// u = 1 + 2*x1 - 3*x2 recovered exactly from noiseless data.
	rng := rand.New(rand.NewSource(11))
	var xs [][]float64
	var us []float64
	for i := 0; i < 40; i++ {
		x1, x2 := rng.Float64(), rng.Float64()
		xs = append(xs, []float64{x1, x2})
		us = append(us, 1+2*x1-3*x2)
	}
	m, err := FitOLS(xs, us)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Intercept-1) > 1e-8 || math.Abs(m.Slope[0]-2) > 1e-8 || math.Abs(m.Slope[1]+3) > 1e-8 {
		t.Errorf("fit = %+v", m)
	}
	if m.R2() < 0.999999 {
		t.Errorf("R2 = %v", m.R2())
	}
	if m.FVU() > 1e-6 {
		t.Errorf("FVU = %v", m.FVU())
	}
	if m.N != 40 {
		t.Errorf("N = %d", m.N)
	}
}

func TestFitOLSErrors(t *testing.T) {
	if _, err := FitOLS([][]float64{{1, 2}}, []float64{1, 2}); !errors.Is(err, ErrShape) {
		t.Errorf("length mismatch err = %v", err)
	}
	if _, err := FitOLS(nil, nil); !errors.Is(err, ErrTooFewObservations) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := FitOLS([][]float64{{1, 2}, {3, 4}}, []float64{1, 2}); !errors.Is(err, ErrTooFewObservations) {
		t.Errorf("too few err = %v", err)
	}
	if _, err := FitOLS([][]float64{{1, 2}, {3}, {4, 5}}, []float64{1, 2, 3}); !errors.Is(err, ErrShape) {
		t.Errorf("ragged err = %v", err)
	}
}

func TestOLSConstantResponse(t *testing.T) {
	xs := [][]float64{{0}, {1}, {2}, {3}}
	us := []float64{5, 5, 5, 5}
	m, err := FitOLS(xs, us)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Predict([]float64{10})-5) > 1e-9 {
		t.Errorf("prediction = %v", m.Predict([]float64{10}))
	}
	if m.R2() != 1 {
		t.Errorf("R2 for perfectly fitted constant = %v", m.R2())
	}
	if m.FVU() != 0 {
		t.Errorf("FVU = %v", m.FVU())
	}
}

// Property: for random SPD systems, Cholesky solve reproduces the known
// solution.
func TestPropertyCholeskyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(5)
		// Build SPD as B*Bt + n*I.
		b := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b.Set(i, j, rng.NormFloat64())
			}
		}
		spd, _ := b.Mul(b.T())
		for i := 0; i < n; i++ {
			spd.Set(i, i, spd.At(i, i)+float64(n))
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		rhs, _ := spd.MulVec(xTrue)
		chol, err := NewCholesky(spd)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		x, err := chol.Solve(rhs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-6 {
				t.Fatalf("trial %d: x=%v want %v", trial, x, xTrue)
			}
		}
	}
}

// Property: OLS residuals are orthogonal to the fitted columns (normal
// equations), checked via quick.
func TestPropertyOLSResidualOrthogonality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, d := 30, 3
		xs := make([][]float64, n)
		us := make([]float64, n)
		for i := 0; i < n; i++ {
			xs[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
			us[i] = rng.NormFloat64()
		}
		m, err := FitOLS(xs, us)
		if err != nil {
			return false
		}
		// Sum of residuals ≈ 0 and residual · column_j ≈ 0.
		var sum float64
		dot := make([]float64, d)
		for i := 0; i < n; i++ {
			r := us[i] - m.Predict(xs[i])
			sum += r
			for j := 0; j < d; j++ {
				dot[j] += r * xs[i][j]
			}
		}
		if math.Abs(sum) > 1e-6 {
			return false
		}
		for j := 0; j < d; j++ {
			if math.Abs(dot[j]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMatrixString(t *testing.T) {
	m, _ := NewMatrixFromRows([][]float64{{1, 2}})
	if s := m.String(); s == "" {
		t.Error("String should not be empty")
	}
}

func BenchmarkOLSFit100x5(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n, d := 100, 5
	xs := make([][]float64, n)
	us := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = make([]float64, d)
		for j := 0; j < d; j++ {
			xs[i][j] = rng.Float64()
		}
		us[i] = rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitOLS(xs, us); err != nil {
			b.Fatal(err)
		}
	}
}
