// Package linalg provides the dense linear algebra needed by the exact
// regression baseline (REG), the piecewise linear regression baseline (PLR)
// and model diagnostics: a row-major dense matrix type, Cholesky and QR
// factorizations, and an ordinary least squares solver.
//
// The implementations favour clarity and numerical robustness over raw
// speed; the exact baselines are intentionally the "expensive" path that the
// LLM model is compared against.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Errors returned by factorizations and solvers.
var (
	ErrShape         = errors.New("linalg: incompatible matrix shapes")
	ErrNotSPD        = errors.New("linalg: matrix is not symmetric positive definite")
	ErrSingular      = errors.New("linalg: matrix is singular to working precision")
	ErrRankDeficient = errors.New("linalg: rank-deficient system")
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zero matrix with the given shape. It panics if either
// dimension is negative.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewMatrixFromRows builds a matrix from row slices. All rows must have the
// same length.
func NewMatrixFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("%w: row %d has %d columns, want %d", ErrShape, i, len(r), cols)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("linalg: row %d out of range [0,%d)", i, m.rows))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: column %d out of range [0,%d)", j, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Mul returns the matrix product m*b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.cols != b.rows {
		return nil, fmt.Errorf("%w: (%dx%d) * (%dx%d)", ErrShape, m.rows, m.cols, b.rows, b.cols)
	}
	out := NewMatrix(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			if a == 0 {
				continue
			}
			rowB := b.data[k*b.cols : (k+1)*b.cols]
			rowOut := out.data[i*out.cols : (i+1)*out.cols]
			for j := range rowB {
				rowOut[j] += a * rowB[j]
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m*x.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if m.cols != len(x) {
		return nil, fmt.Errorf("%w: (%dx%d) * vec(%d)", ErrShape, m.rows, m.cols, len(x))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, a := range row {
			s += a * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Add returns m + b.
func (m *Matrix) Add(b *Matrix) (*Matrix, error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, fmt.Errorf("%w: (%dx%d) + (%dx%d)", ErrShape, m.rows, m.cols, b.rows, b.cols)
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] += b.data[i]
	}
	return out, nil
}

// Scale returns alpha*m as a new matrix.
func (m *Matrix) Scale(alpha float64) *Matrix {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= alpha
	}
	return out
}

// ApproxEqual reports whether m and b have the same shape and all elements
// within tol.
func (m *Matrix) ApproxEqual(b *Matrix, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i := range m.data {
		if math.Abs(m.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix row by row; intended for debugging and error
// messages, not machine parsing.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		sb.WriteByte('[')
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%.6g", m.At(i, j))
		}
		sb.WriteString("]\n")
	}
	return sb.String()
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Gram computes Aᵀ·A for the design matrix A; it is the normal-equations
// matrix used by the Cholesky-based least squares path.
func Gram(a *Matrix) *Matrix {
	g := NewMatrix(a.cols, a.cols)
	for i := 0; i < a.cols; i++ {
		for j := i; j < a.cols; j++ {
			var s float64
			for k := 0; k < a.rows; k++ {
				s += a.data[k*a.cols+i] * a.data[k*a.cols+j]
			}
			g.Set(i, j, s)
			g.Set(j, i, s)
		}
	}
	return g
}

// MulTVec computes Aᵀ·y.
func MulTVec(a *Matrix, y []float64) ([]float64, error) {
	if a.rows != len(y) {
		return nil, fmt.Errorf("%w: A is %dx%d, y has length %d", ErrShape, a.rows, a.cols, len(y))
	}
	out := make([]float64, a.cols)
	for k := 0; k < a.rows; k++ {
		yk := y[k]
		row := a.data[k*a.cols : (k+1)*a.cols]
		for j, v := range row {
			out[j] += v * yk
		}
	}
	return out, nil
}
