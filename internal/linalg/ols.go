package linalg

import (
	"errors"
	"fmt"
	"math"
)

// OLSModel is a fitted ordinary least squares multivariate linear regression
// u ≈ b0 + b·x. It is the exact "REG" baseline the paper compares against
// (Definition 1), computed with full access to the data subspace.
type OLSModel struct {
	// Intercept is the fitted intercept b0.
	Intercept float64
	// Slope holds the fitted coefficients b1..bd.
	Slope []float64
	// N is the number of observations the model was fitted on.
	N int
	// RSS is the residual sum of squares on the training observations.
	RSS float64
	// TSS is the total sum of squares of the response around its mean.
	TSS float64
}

// ErrTooFewObservations is returned when a regression is requested over
// fewer observations than coefficients to fit.
var ErrTooFewObservations = errors.New("linalg: too few observations for regression")

// FitOLS fits u ≈ b0 + b·x by least squares over the given observations.
// xs[i] is the i-th input vector (all must share the same dimension d) and
// us[i] the corresponding response. At least d+1 observations are required.
func FitOLS(xs [][]float64, us []float64) (*OLSModel, error) {
	if len(xs) != len(us) {
		return nil, fmt.Errorf("%w: %d inputs vs %d responses", ErrShape, len(xs), len(us))
	}
	n := len(xs)
	if n == 0 {
		return nil, ErrTooFewObservations
	}
	d := len(xs[0])
	if n < d+1 {
		return nil, fmt.Errorf("%w: n=%d, need at least %d", ErrTooFewObservations, n, d+1)
	}
	// Design matrix with a leading column of ones for the intercept.
	a := NewMatrix(n, d+1)
	for i, x := range xs {
		if len(x) != d {
			return nil, fmt.Errorf("%w: observation %d has dimension %d, want %d", ErrShape, i, len(x), d)
		}
		a.Set(i, 0, 1)
		for j, v := range x {
			a.Set(i, j+1, v)
		}
	}
	coef, err := SolveLeastSquares(a, us)
	if err != nil {
		return nil, err
	}
	m := &OLSModel{Intercept: coef[0], Slope: append([]float64(nil), coef[1:]...), N: n}
	// Diagnostics.
	mean := 0.0
	for _, u := range us {
		mean += u
	}
	mean /= float64(n)
	for i, x := range xs {
		r := us[i] - m.Predict(x)
		m.RSS += r * r
		t := us[i] - mean
		m.TSS += t * t
	}
	return m, nil
}

// Predict returns the fitted value b0 + b·x.
func (m *OLSModel) Predict(x []float64) float64 {
	s := m.Intercept
	for j, b := range m.Slope {
		s += b * x[j]
	}
	return s
}

// R2 returns the coefficient of determination 1 - RSS/TSS on the training
// data. When the response is constant (TSS == 0) it returns 1 if the fit is
// exact and 0 otherwise.
func (m *OLSModel) R2() float64 {
	if m.TSS == 0 {
		if m.RSS == 0 {
			return 1
		}
		return 0
	}
	return 1 - m.RSS/m.TSS
}

// FVU returns the fraction of variance unexplained RSS/TSS on the training
// data (the paper's goodness-of-fit metric s). For a constant response it
// returns 0 for an exact fit and +Inf otherwise.
func (m *OLSModel) FVU() float64 {
	if m.TSS == 0 {
		if m.RSS == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return m.RSS / m.TSS
}
