package linalg

import (
	"fmt"
	"math"
)

// Cholesky holds the lower-triangular factor L of a symmetric positive
// definite matrix A = L·Lᵀ.
type Cholesky struct {
	l *Matrix
	n int
}

// NewCholesky factorizes the symmetric positive definite matrix a.
// It returns ErrNotSPD if the matrix is not (numerically) positive definite.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("%w: Cholesky requires a square matrix, got %dx%d", ErrShape, a.Rows(), a.Cols())
	}
	n := a.Rows()
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		var diag float64
		for k := 0; k < j; k++ {
			diag += l.At(j, k) * l.At(j, k)
		}
		d := a.At(j, j) - diag
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("%w (pivot %d is %g)", ErrNotSPD, j, d)
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			var s float64
			for k := 0; k < j; k++ {
				s += l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, (a.At(i, j)-s)/ljj)
		}
	}
	return &Cholesky{l: l, n: n}, nil
}

// L returns a copy of the lower-triangular factor.
func (c *Cholesky) L() *Matrix { return c.l.Clone() }

// Solve solves A·x = b where A = L·Lᵀ.
func (c *Cholesky) Solve(b []float64) ([]float64, error) {
	if len(b) != c.n {
		return nil, fmt.Errorf("%w: system is %dx%d, rhs has length %d", ErrShape, c.n, c.n, len(b))
	}
	// Forward substitution: L·y = b.
	y := make([]float64, c.n)
	for i := 0; i < c.n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= c.l.At(i, k) * y[k]
		}
		y[i] = s / c.l.At(i, i)
	}
	// Back substitution: Lᵀ·x = y.
	x := make([]float64, c.n)
	for i := c.n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < c.n; k++ {
			s -= c.l.At(k, i) * x[k]
		}
		x[i] = s / c.l.At(i, i)
	}
	return x, nil
}

// QR holds a Householder QR factorization A = Q·R of an m×n matrix with
// m >= n. It is used for least-squares solves that are more robust than the
// normal equations when the design matrix is ill-conditioned.
type QR struct {
	qr    *Matrix   // packed Householder vectors below the diagonal, R on/above
	rdiag []float64 // diagonal of R
	m, n  int
}

// NewQR factorizes a (m×n, m >= n).
func NewQR(a *Matrix) (*QR, error) {
	m, n := a.Rows(), a.Cols()
	if m < n {
		return nil, fmt.Errorf("%w: QR requires rows >= cols, got %dx%d", ErrShape, m, n)
	}
	qr := a.Clone()
	rdiag := make([]float64, n)
	for k := 0; k < n; k++ {
		// Compute the norm of the k-th column below the diagonal.
		var nrm float64
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, qr.At(i, k))
		}
		if nrm == 0 {
			return nil, fmt.Errorf("%w: column %d is zero below the diagonal", ErrRankDeficient, k)
		}
		if qr.At(k, k) < 0 {
			nrm = -nrm
		}
		for i := k; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/nrm)
		}
		qr.Set(k, k, qr.At(k, k)+1)
		// Apply the transformation to the remaining columns.
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s = -s / qr.At(k, k)
			for i := k; i < m; i++ {
				qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
			}
		}
		rdiag[k] = -nrm
	}
	return &QR{qr: qr, rdiag: rdiag, m: m, n: n}, nil
}

// Solve returns the least-squares solution x minimizing ||A·x - b||2.
func (q *QR) Solve(b []float64) ([]float64, error) {
	if len(b) != q.m {
		return nil, fmt.Errorf("%w: A has %d rows, b has length %d", ErrShape, q.m, len(b))
	}
	for _, d := range q.rdiag {
		if math.Abs(d) < 1e-14 {
			return nil, ErrRankDeficient
		}
	}
	y := make([]float64, q.m)
	copy(y, b)
	// Apply Householder transformations to b: y = Qᵀ·b.
	for k := 0; k < q.n; k++ {
		var s float64
		for i := k; i < q.m; i++ {
			s += q.qr.At(i, k) * y[i]
		}
		s = -s / q.qr.At(k, k)
		for i := k; i < q.m; i++ {
			y[i] += s * q.qr.At(i, k)
		}
	}
	// Back substitution: R·x = y[:n].
	x := make([]float64, q.n)
	for i := q.n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < q.n; j++ {
			s -= q.qr.At(i, j) * x[j]
		}
		x[i] = s / q.rdiag[i]
	}
	return x, nil
}

// SolveLeastSquares returns argmin_x ||A·x - b||2. It first attempts the
// fast normal-equations path (Cholesky on AᵀA, with a tiny ridge retried when
// the Gram matrix is numerically semidefinite) and falls back to Householder
// QR when that fails.
func SolveLeastSquares(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows() != len(b) {
		return nil, fmt.Errorf("%w: A has %d rows, b has length %d", ErrShape, a.Rows(), len(b))
	}
	if a.Rows() < a.Cols() {
		return nil, fmt.Errorf("%w: underdetermined system %dx%d", ErrRankDeficient, a.Rows(), a.Cols())
	}
	g := Gram(a)
	aty, err := MulTVec(a, b)
	if err != nil {
		return nil, err
	}
	if chol, err := NewCholesky(g); err == nil {
		if x, err := chol.Solve(aty); err == nil && allFinite(x) {
			return x, nil
		}
	}
	// Retry with a small ridge on the diagonal (handles nearly collinear
	// columns, which arise for tiny data subspaces).
	ridge := g.Clone()
	trace := 0.0
	for i := 0; i < g.Rows(); i++ {
		trace += g.At(i, i)
	}
	eps := 1e-10 * (trace/float64(g.Rows()) + 1)
	for i := 0; i < ridge.Rows(); i++ {
		ridge.Set(i, i, ridge.At(i, i)+eps)
	}
	if chol, err := NewCholesky(ridge); err == nil {
		if x, err := chol.Solve(aty); err == nil && allFinite(x) {
			return x, nil
		}
	}
	qr, err := NewQR(a)
	if err != nil {
		return nil, err
	}
	return qr.Solve(b)
}

func allFinite(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
