package sqlfront

import (
	"math"
	"strconv"
)

// StatementKind distinguishes the three analytics statements of the dialect.
type StatementKind int

// Statement kinds.
const (
	// StmtMean is the Q1 mean-value query: SELECT AVG(u) FROM t WITHIN θ OF (x...).
	StmtMean StatementKind = iota
	// StmtRegression is the Q2 linear-regression query:
	// SELECT REGRESSION(u ON x1, ...) FROM t WITHIN θ OF (x...).
	StmtRegression
	// StmtValue is the data-value prediction query:
	// SELECT VALUE(u) FROM t AT (x...) WITHIN θ OF (x...).
	StmtValue
)

func (k StatementKind) String() string {
	switch k {
	case StmtMean:
		return "mean"
	case StmtRegression:
		return "regression"
	case StmtValue:
		return "value"
	default:
		return "unknown"
	}
}

// Statement is the parsed form of one analytics query.
type Statement struct {
	// Kind selects between Q1, Q2 and data-value prediction.
	Kind StatementKind
	// Output is the output attribute name inside AVG(...)/REGRESSION(...)/VALUE(...).
	Output string
	// Inputs holds the explanatory attribute names of a REGRESSION(u ON ...)
	// query; empty means "all non-output attributes" (resolved by the caller).
	Inputs []string
	// Table is the relation name after FROM.
	Table string
	// Theta is the selection radius after WITHIN.
	Theta float64
	// Center is the selection centre after OF.
	Center []float64
	// At is the prediction point of a VALUE query (empty otherwise).
	At []float64
	// Norm is the Lp norm: 1, 2 or +Inf. Defaults to 2.
	Norm float64
	// Approx is true when the APPROX modifier requests the model-based
	// (LLM) execution path; false requests exact execution. EXACT may be
	// given explicitly and is the default.
	Approx bool
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	tokens []Token
	pos    int
}

// Parse parses a single statement of the analytics dialect.
func Parse(input string) (*Statement, error) {
	tokens, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{tokens: tokens}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	// Optional trailing semicolon, then EOF.
	if p.peek().Kind == TokenSemicolon {
		p.next()
	}
	if tok := p.peek(); tok.Kind != TokenEOF {
		return nil, errf(tok.Pos, "unexpected trailing input %q", tok.Text)
	}
	return stmt, nil
}

func (p *parser) peek() Token { return p.tokens[p.pos] }

func (p *parser) next() Token {
	t := p.tokens[p.pos]
	if t.Kind != TokenEOF {
		p.pos++
	}
	return t
}

func (p *parser) expectKeyword(kw string) (Token, error) {
	t := p.next()
	if t.Kind != TokenKeyword || t.Text != kw {
		return t, errf(t.Pos, "expected %s, got %q", kw, t.Text)
	}
	return t, nil
}

func (p *parser) expectKind(kind TokenKind) (Token, error) {
	t := p.next()
	if t.Kind != kind {
		return t, errf(t.Pos, "expected %s, got %q", kind, t.Text)
	}
	return t, nil
}

func (p *parser) parseStatement() (*Statement, error) {
	if _, err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &Statement{Norm: 2}
	// Optional APPROX / EXACT modifier.
	switch t := p.peek(); {
	case t.Kind == TokenKeyword && t.Text == "APPROX":
		stmt.Approx = true
		p.next()
	case t.Kind == TokenKeyword && t.Text == "EXACT":
		stmt.Approx = false
		p.next()
	}
	// Aggregate / projection clause.
	t := p.next()
	if t.Kind != TokenKeyword {
		return nil, errf(t.Pos, "expected AVG, REGRESSION or VALUE, got %q", t.Text)
	}
	switch t.Text {
	case "AVG":
		stmt.Kind = StmtMean
		out, err := p.parseParenIdent()
		if err != nil {
			return nil, err
		}
		stmt.Output = out
	case "REGRESSION":
		stmt.Kind = StmtRegression
		out, inputs, err := p.parseRegressionClause()
		if err != nil {
			return nil, err
		}
		stmt.Output = out
		stmt.Inputs = inputs
	case "VALUE":
		stmt.Kind = StmtValue
		out, err := p.parseParenIdent()
		if err != nil {
			return nil, err
		}
		stmt.Output = out
	default:
		return nil, errf(t.Pos, "expected AVG, REGRESSION or VALUE, got %q", t.Text)
	}
	if _, err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	tbl, err := p.expectKind(TokenIdent)
	if err != nil {
		return nil, err
	}
	stmt.Table = tbl.Text
	// VALUE queries take an AT (point) clause before the selection.
	if stmt.Kind == StmtValue {
		if _, err := p.expectKeyword("AT"); err != nil {
			return nil, err
		}
		at, err := p.parseVector()
		if err != nil {
			return nil, err
		}
		stmt.At = at
	}
	if _, err := p.expectKeyword("WITHIN"); err != nil {
		return nil, err
	}
	radius, err := p.parseNumber()
	if err != nil {
		return nil, err
	}
	if radius < 0 {
		return nil, errf(p.peek().Pos, "radius must be non-negative, got %v", radius)
	}
	stmt.Theta = radius
	if _, err := p.expectKeyword("OF"); err != nil {
		return nil, err
	}
	center, err := p.parseVector()
	if err != nil {
		return nil, err
	}
	stmt.Center = center
	// Optional NORM clause.
	if t := p.peek(); t.Kind == TokenKeyword && t.Text == "NORM" {
		p.next()
		norm, err := p.parseNorm()
		if err != nil {
			return nil, err
		}
		stmt.Norm = norm
	}
	return stmt, nil
}

// parseParenIdent parses "( ident )".
func (p *parser) parseParenIdent() (string, error) {
	if _, err := p.expectKind(TokenLParen); err != nil {
		return "", err
	}
	id, err := p.expectKind(TokenIdent)
	if err != nil {
		return "", err
	}
	if _, err := p.expectKind(TokenRParen); err != nil {
		return "", err
	}
	return id.Text, nil
}

// parseRegressionClause parses "( output ON in1, in2, ... )" or
// "( output ON * )" or just "( output )".
func (p *parser) parseRegressionClause() (string, []string, error) {
	if _, err := p.expectKind(TokenLParen); err != nil {
		return "", nil, err
	}
	out, err := p.expectKind(TokenIdent)
	if err != nil {
		return "", nil, err
	}
	var inputs []string
	if t := p.peek(); t.Kind == TokenKeyword && t.Text == "ON" {
		p.next()
		if p.peek().Kind == TokenStar {
			p.next()
		} else {
			for {
				id, err := p.expectKind(TokenIdent)
				if err != nil {
					return "", nil, err
				}
				inputs = append(inputs, id.Text)
				if p.peek().Kind != TokenComma {
					break
				}
				p.next()
			}
		}
	}
	if _, err := p.expectKind(TokenRParen); err != nil {
		return "", nil, err
	}
	return out.Text, inputs, nil
}

// parseVector parses "( num, num, ... )".
func (p *parser) parseVector() ([]float64, error) {
	if _, err := p.expectKind(TokenLParen); err != nil {
		return nil, err
	}
	var out []float64
	for {
		v, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		t := p.next()
		if t.Kind == TokenRParen {
			break
		}
		if t.Kind != TokenComma {
			return nil, errf(t.Pos, "expected ',' or ')', got %q", t.Text)
		}
	}
	return out, nil
}

func (p *parser) parseNumber() (float64, error) {
	t := p.next()
	if t.Kind != TokenNumber {
		return 0, errf(t.Pos, "expected a number, got %q", t.Text)
	}
	v, err := strconv.ParseFloat(t.Text, 64)
	if err != nil {
		return 0, errf(t.Pos, "invalid number %q", t.Text)
	}
	return v, nil
}

// parseNorm parses the NORM argument: L1, L2, LINF (as identifiers) or a
// plain number.
func (p *parser) parseNorm() (float64, error) {
	t := p.next()
	switch t.Kind {
	case TokenIdent:
		switch t.Text {
		case "L1", "l1":
			return 1, nil
		case "L2", "l2":
			return 2, nil
		case "LINF", "linf", "Linf":
			return math.Inf(1), nil
		}
		return 0, errf(t.Pos, "unknown norm %q (want L1, L2 or LINF)", t.Text)
	case TokenNumber:
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil || v < 1 {
			return 0, errf(t.Pos, "invalid norm %q", t.Text)
		}
		return v, nil
	default:
		return 0, errf(t.Pos, "expected a norm, got %q", t.Text)
	}
}
