package sqlfront

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT AVG(u) FROM pts WITHIN 0.2 OF (0.5, -0.5);")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
	}
	want := []TokenKind{
		TokenKeyword, TokenKeyword, TokenLParen, TokenIdent, TokenRParen,
		TokenKeyword, TokenIdent, TokenKeyword, TokenNumber, TokenKeyword,
		TokenLParen, TokenNumber, TokenComma, TokenNumber, TokenRParen,
		TokenSemicolon, TokenEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("token count = %d, want %d (%v)", len(kinds), len(want), toks)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d kind = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestLexCaseInsensitiveKeywords(t *testing.T) {
	toks, err := Lex("select Avg(u) from t within 1 of (0)")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokenKeyword || toks[0].Text != "SELECT" {
		t.Errorf("first token = %+v", toks[0])
	}
	if toks[1].Text != "AVG" {
		t.Errorf("avg token = %+v", toks[1])
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := Lex("-1.5e-3 +2 .5 42")
	if err != nil {
		t.Fatal(err)
	}
	texts := []string{"-1.5e-3", "+2", ".5", "42"}
	for i, want := range texts {
		if toks[i].Kind != TokenNumber || toks[i].Text != want {
			t.Errorf("token %d = %+v, want number %q", i, toks[i], want)
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, in := range []string{"SELECT @", "a - b", "a !"} {
		if _, err := Lex(in); err == nil {
			t.Errorf("Lex(%q) should fail", in)
		} else {
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Errorf("Lex(%q) error type = %T", in, err)
			}
		}
	}
}

func TestTokenKindString(t *testing.T) {
	for _, k := range []TokenKind{TokenEOF, TokenIdent, TokenNumber, TokenKeyword, TokenComma, TokenLParen, TokenRParen, TokenSemicolon, TokenStar} {
		if k.String() == "unknown" {
			t.Errorf("kind %d has no String", k)
		}
	}
	if TokenKind(99).String() != "unknown" {
		t.Error("unknown kind should stringify as unknown")
	}
}

func TestParseMeanQuery(t *testing.T) {
	stmt, err := Parse("SELECT AVG(u) FROM seismic WITHIN 0.2 OF (0.5, 0.25);")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Kind != StmtMean || stmt.Output != "u" || stmt.Table != "seismic" {
		t.Errorf("stmt = %+v", stmt)
	}
	if stmt.Theta != 0.2 || len(stmt.Center) != 2 || stmt.Center[1] != 0.25 {
		t.Errorf("selection = θ=%v center=%v", stmt.Theta, stmt.Center)
	}
	if stmt.Approx {
		t.Error("default must be exact")
	}
	if stmt.Norm != 2 {
		t.Errorf("default norm = %v", stmt.Norm)
	}
}

func TestParseApproxAndExactModifiers(t *testing.T) {
	stmt, err := Parse("SELECT APPROX AVG(u) FROM t WITHIN 1 OF (0)")
	if err != nil {
		t.Fatal(err)
	}
	if !stmt.Approx {
		t.Error("APPROX not recognized")
	}
	stmt, err = Parse("SELECT EXACT AVG(u) FROM t WITHIN 1 OF (0)")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Approx {
		t.Error("EXACT must clear Approx")
	}
}

func TestParseRegressionQuery(t *testing.T) {
	stmt, err := Parse("SELECT REGRESSION(pwave ON lon, lat) FROM seismic WITHIN 0.3 OF (0.1, 0.9) NORM L2")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Kind != StmtRegression || stmt.Output != "pwave" {
		t.Errorf("stmt = %+v", stmt)
	}
	if len(stmt.Inputs) != 2 || stmt.Inputs[0] != "lon" || stmt.Inputs[1] != "lat" {
		t.Errorf("inputs = %v", stmt.Inputs)
	}
	if stmt.Norm != 2 {
		t.Errorf("norm = %v", stmt.Norm)
	}
}

func TestParseRegressionImplicitInputs(t *testing.T) {
	stmt, err := Parse("SELECT REGRESSION(u) FROM t WITHIN 0.5 OF (0, 0, 0)")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Inputs) != 0 {
		t.Errorf("implicit inputs should be empty, got %v", stmt.Inputs)
	}
	stmt, err = Parse("SELECT REGRESSION(u ON *) FROM t WITHIN 0.5 OF (0, 0, 0)")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Inputs) != 0 {
		t.Errorf("star inputs should be empty, got %v", stmt.Inputs)
	}
}

func TestParseValueQuery(t *testing.T) {
	stmt, err := Parse("SELECT APPROX VALUE(u) FROM t AT (0.3, 0.4) WITHIN 0.2 OF (0.3, 0.4)")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Kind != StmtValue || !stmt.Approx {
		t.Errorf("stmt = %+v", stmt)
	}
	if len(stmt.At) != 2 || stmt.At[0] != 0.3 {
		t.Errorf("At = %v", stmt.At)
	}
}

func TestParseNorms(t *testing.T) {
	cases := map[string]float64{
		"NORM L1":   1,
		"NORM L2":   2,
		"NORM LINF": math.Inf(1),
		"NORM 3":    3,
	}
	for suffix, want := range cases {
		stmt, err := Parse("SELECT AVG(u) FROM t WITHIN 1 OF (0) " + suffix)
		if err != nil {
			t.Errorf("%s: %v", suffix, err)
			continue
		}
		if stmt.Norm != want && !(math.IsInf(want, 1) && math.IsInf(stmt.Norm, 1)) {
			t.Errorf("%s: norm = %v, want %v", suffix, stmt.Norm, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"INSERT INTO t VALUES (1)",
		"SELECT SUM(u) FROM t WITHIN 1 OF (0)",
		"SELECT AVG u FROM t WITHIN 1 OF (0)",
		"SELECT AVG(u) t WITHIN 1 OF (0)",
		"SELECT AVG(u) FROM t WITHIN OF (0)",
		"SELECT AVG(u) FROM t WITHIN -1 OF (0)",
		"SELECT AVG(u) FROM t WITHIN 1 OF ()",
		"SELECT AVG(u) FROM t WITHIN 1 OF (0,)",
		"SELECT AVG(u) FROM t WITHIN 1 OF (0) NORM L7",
		"SELECT AVG(u) FROM t WITHIN 1 OF (0) NORM 0.5",
		"SELECT AVG(u) FROM t WITHIN 1 OF (0) GARBAGE",
		"SELECT AVG(u) FROM t WITHIN 1 OF (0) ; extra",
		"SELECT REGRESSION(u ON ) FROM t WITHIN 1 OF (0)",
		"SELECT VALUE(u) FROM t WITHIN 1 OF (0)", // missing AT
		"SELECT AVG(123) FROM t WITHIN 1 OF (0)",
		"SELECT AVG(u) FROM 42 WITHIN 1 OF (0)",
		"SELECT AVG(u) FROM t WITHIN 1 OF 0",
		"SELECT AVG(u) FROM t WITHIN 1 OF (0 0)",
		"SELECT AVG(u) FROM t WITHIN 1 OF (0) NORM",
	}
	for _, in := range cases {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestParseErrorsCarryPosition(t *testing.T) {
	_, err := Parse("SELECT AVG(u) FROM t WITHIN 1 OF (0) GARBAGE")
	var se *SyntaxError
	if !errors.As(err, &se) {
		t.Fatalf("error type = %T", err)
	}
	if se.Pos <= 0 {
		t.Errorf("position = %d", se.Pos)
	}
	if !strings.Contains(se.Error(), "position") {
		t.Errorf("error message %q should mention position", se.Error())
	}
}

func TestStatementKindString(t *testing.T) {
	if StmtMean.String() != "mean" || StmtRegression.String() != "regression" || StmtValue.String() != "value" {
		t.Error("kind strings wrong")
	}
	if StatementKind(9).String() != "unknown" {
		t.Error("unknown kind string")
	}
}

func TestParseWhitespaceAndCaseInsensitivity(t *testing.T) {
	stmt, err := Parse("  select   approx   avg ( u )   from   t   within   0.5   of  ( 1 , 2 )  ")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Kind != StmtMean || !stmt.Approx || stmt.Theta != 0.5 || len(stmt.Center) != 2 {
		t.Errorf("stmt = %+v", stmt)
	}
}

func TestParseHighDimensionalCenter(t *testing.T) {
	stmt, err := Parse("SELECT AVG(u) FROM t WITHIN 2.5 OF (1, 2, 3, 4, 5, 6, 7, 8)")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Center) != 8 || stmt.Center[7] != 8 {
		t.Errorf("center = %v", stmt.Center)
	}
}

func BenchmarkParseRegression(b *testing.B) {
	q := "SELECT REGRESSION(u ON x1, x2, x3) FROM pts WITHIN 0.25 OF (0.5, 0.5, 0.5) NORM L2;"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}
