// Package sqlfront implements the declarative front-end for the analytics
// queries of the paper: a small SQL-like dialect for mean-value (Q1) and
// linear-regression (Q2) queries over data subspaces defined by radius
// selections, e.g.
//
//	SELECT AVG(u) FROM seismic WITHIN 0.2 OF (0.5, 0.5);
//	SELECT REGRESSION(u ON lon, lat) FROM seismic WITHIN 0.2 OF (0.5, 0.5) NORM L2;
//	SELECT APPROX AVG(u) FROM seismic WITHIN 0.2 OF (0.5, 0.5);
//
// The APPROX modifier routes the query to the trained LLM model instead of
// the exact executor. The package provides the tokenizer, the AST and the
// parser; binding to executors lives with the callers (cmd/llmq and the
// examples).
package sqlfront

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies a lexical token.
type TokenKind int

// Token kinds.
const (
	TokenEOF TokenKind = iota
	TokenIdent
	TokenNumber
	TokenKeyword
	TokenComma
	TokenLParen
	TokenRParen
	TokenSemicolon
	TokenStar
)

func (k TokenKind) String() string {
	switch k {
	case TokenEOF:
		return "EOF"
	case TokenIdent:
		return "identifier"
	case TokenNumber:
		return "number"
	case TokenKeyword:
		return "keyword"
	case TokenComma:
		return ","
	case TokenLParen:
		return "("
	case TokenRParen:
		return ")"
	case TokenSemicolon:
		return ";"
	case TokenStar:
		return "*"
	default:
		return "unknown"
	}
}

// Token is one lexical token with its source position (1-based column).
type Token struct {
	Kind TokenKind
	Text string
	Pos  int
}

// keywords recognized by the dialect (case-insensitive).
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WITHIN": true, "OF": true,
	"AVG": true, "REGRESSION": true, "ON": true, "NORM": true,
	"APPROX": true, "EXACT": true, "PREDICT": true, "VALUE": true,
	"AT": true,
}

// SyntaxError describes a lexing or parsing failure with its position.
type SyntaxError struct {
	Pos     int
	Message string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("sql: syntax error at position %d: %s", e.Pos, e.Message)
}

func errf(pos int, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Message: fmt.Sprintf(format, args...)}
}

// Lex tokenizes the input statement.
func Lex(input string) ([]Token, error) {
	var tokens []Token
	i := 0
	n := len(input)
	for i < n {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == ',':
			tokens = append(tokens, Token{Kind: TokenComma, Text: ",", Pos: i + 1})
			i++
		case c == '(':
			tokens = append(tokens, Token{Kind: TokenLParen, Text: "(", Pos: i + 1})
			i++
		case c == ')':
			tokens = append(tokens, Token{Kind: TokenRParen, Text: ")", Pos: i + 1})
			i++
		case c == ';':
			tokens = append(tokens, Token{Kind: TokenSemicolon, Text: ";", Pos: i + 1})
			i++
		case c == '*':
			tokens = append(tokens, Token{Kind: TokenStar, Text: "*", Pos: i + 1})
			i++
		case unicode.IsDigit(c) || c == '-' || c == '+' || c == '.':
			start := i
			i++
			for i < n {
				d := rune(input[i])
				if unicode.IsDigit(d) || d == '.' || d == 'e' || d == 'E' ||
					((d == '-' || d == '+') && (input[i-1] == 'e' || input[i-1] == 'E')) {
					i++
					continue
				}
				break
			}
			text := input[start:i]
			if text == "-" || text == "+" || text == "." {
				return nil, errf(start+1, "unexpected character %q", text)
			}
			tokens = append(tokens, Token{Kind: TokenNumber, Text: text, Pos: start + 1})
		case unicode.IsLetter(c) || c == '_':
			start := i
			i++
			for i < n {
				d := rune(input[i])
				if unicode.IsLetter(d) || unicode.IsDigit(d) || d == '_' {
					i++
					continue
				}
				break
			}
			text := input[start:i]
			kind := TokenIdent
			if keywords[strings.ToUpper(text)] {
				kind = TokenKeyword
				text = strings.ToUpper(text)
			}
			tokens = append(tokens, Token{Kind: kind, Text: text, Pos: start + 1})
		default:
			return nil, errf(i+1, "unexpected character %q", string(c))
		}
	}
	tokens = append(tokens, Token{Kind: TokenEOF, Pos: n + 1})
	return tokens, nil
}
