// Package quant implements the conditionally growing Adaptive Vector
// Quantization (AVQ) algorithm of Section IV of the paper: prototypes over
// the query space are updated by stochastic gradient descent toward incoming
// queries, and a new prototype is spawned whenever the closest existing
// prototype is farther than the vigilance threshold ρ. The number of
// prototypes K is therefore data-driven rather than fixed a priori.
package quant

import (
	"errors"
	"fmt"
	"math"

	"llmq/internal/vector"
)

// Errors returned by the quantizer.
var (
	ErrDimension = errors.New("quant: dimension mismatch")
	ErrNoData    = errors.New("quant: no observations yet")
)

// Vigilance computes the paper's vigilance threshold ρ = a·(√d + 1) for a
// resolution coefficient a ∈ (0, 1] over a d-dimensional input space (the
// query space has dimension d+1: the centre plus the radius).
func Vigilance(a float64, d int) float64 {
	return a * (math.Sqrt(float64(d)) + 1)
}

// Quantizer maintains the growing set of prototypes.
type Quantizer struct {
	dim       int
	vigilance float64
	protos    []vector.Vec
	counts    []int
	drift     float64 // Γ^J of the most recent observation
}

// New creates a quantizer for dim-dimensional vectors with the given
// vigilance threshold ρ > 0.
func New(dim int, vigilance float64) (*Quantizer, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("quant: dimension must be positive, got %d", dim)
	}
	if vigilance <= 0 || math.IsNaN(vigilance) || math.IsInf(vigilance, 0) {
		return nil, fmt.Errorf("quant: vigilance must be positive and finite, got %v", vigilance)
	}
	return &Quantizer{dim: dim, vigilance: vigilance}, nil
}

// Dim returns the dimensionality of the quantized space.
func (q *Quantizer) Dim() int { return q.dim }

// Vigilance returns the vigilance threshold ρ.
func (q *Quantizer) Vigilance() float64 { return q.vigilance }

// K returns the current number of prototypes.
func (q *Quantizer) K() int { return len(q.protos) }

// Prototype returns a copy of the k-th prototype.
func (q *Quantizer) Prototype(k int) vector.Vec {
	return q.protos[k].Clone()
}

// Prototypes returns copies of all prototypes.
func (q *Quantizer) Prototypes() []vector.Vec {
	out := make([]vector.Vec, len(q.protos))
	for i, p := range q.protos {
		out[i] = p.Clone()
	}
	return out
}

// Count returns how many observations the k-th prototype has won.
func (q *Quantizer) Count(k int) int { return q.counts[k] }

// Winner returns the index of the prototype closest (L2) to x and the
// distance to it. It returns ErrNoData before any observation.
func (q *Quantizer) Winner(x vector.Vec) (int, float64, error) {
	if len(x) != q.dim {
		return 0, 0, fmt.Errorf("%w: got %d, want %d", ErrDimension, len(x), q.dim)
	}
	if len(q.protos) == 0 {
		return 0, 0, ErrNoData
	}
	best, bestDist := 0, math.Inf(1)
	for k, w := range q.protos {
		if d := vector.Distance(x, w); d < bestDist {
			best, bestDist = k, d
		}
	}
	return best, bestDist, nil
}

// Observation describes the outcome of one Observe call.
type Observation struct {
	// Winner is the index of the prototype associated with the observation
	// (either the updated winner or the newly created prototype).
	Winner int
	// Created is true when the observation spawned a new prototype.
	Created bool
	// Distance is the L2 distance from the observation to the winning
	// prototype before any update (0 when a prototype was created).
	Distance float64
	// Drift is the prototype movement Γ^J caused by this observation
	// (Σ_k ||w_k,t − w_k,t−1||₂, which has a single non-zero term).
	Drift float64
}

// Observe folds one observation into the quantizer using learning rate eta.
// If the closest prototype is within the vigilance threshold it is moved
// toward x by Δw = η(x − w); otherwise x becomes a new prototype.
func (q *Quantizer) Observe(x vector.Vec, eta float64) (Observation, error) {
	if len(x) != q.dim {
		return Observation{}, fmt.Errorf("%w: got %d, want %d", ErrDimension, len(x), q.dim)
	}
	if eta < 0 || eta > 1 || math.IsNaN(eta) {
		return Observation{}, fmt.Errorf("quant: learning rate %v outside [0,1]", eta)
	}
	if len(q.protos) == 0 {
		q.protos = append(q.protos, x.Clone())
		q.counts = append(q.counts, 1)
		q.drift = 0
		return Observation{Winner: 0, Created: true}, nil
	}
	winner, dist, err := q.Winner(x)
	if err != nil {
		return Observation{}, err
	}
	if dist > q.vigilance {
		q.protos = append(q.protos, x.Clone())
		q.counts = append(q.counts, 1)
		q.drift = 0
		return Observation{Winner: len(q.protos) - 1, Created: true, Distance: dist}, nil
	}
	// SGD update of the winner toward the observation.
	w := q.protos[winner]
	drift := 0.0
	for i := range w {
		delta := eta * (x[i] - w[i])
		w[i] += delta
		drift += delta * delta
	}
	drift = math.Sqrt(drift)
	q.counts[winner]++
	q.drift = drift
	return Observation{Winner: winner, Distance: dist, Drift: drift}, nil
}

// LastDrift returns the prototype movement Γ^J of the most recent
// observation.
func (q *Quantizer) LastDrift() float64 { return q.drift }

// QuantizationError returns the empirical expected quantization error
// (the objective J of Eq. 7) of the quantizer over the given sample:
// the mean squared L2 distance from each vector to its winning prototype.
func (q *Quantizer) QuantizationError(sample []vector.Vec) (float64, error) {
	if len(q.protos) == 0 {
		return 0, ErrNoData
	}
	if len(sample) == 0 {
		return 0, errors.New("quant: empty sample")
	}
	var sum float64
	for _, x := range sample {
		_, d, err := q.Winner(x)
		if err != nil {
			return 0, err
		}
		sum += d * d
	}
	return sum / float64(len(sample)), nil
}
