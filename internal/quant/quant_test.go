package quant

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"llmq/internal/vector"
)

func TestVigilance(t *testing.T) {
	if got := Vigilance(0.25, 4); math.Abs(got-0.25*3) > 1e-12 {
		t.Errorf("Vigilance(0.25, 4) = %v", got)
	}
	if got := Vigilance(1, 1); math.Abs(got-2) > 1e-12 {
		t.Errorf("Vigilance(1, 1) = %v", got)
	}
	// Higher a gives a larger threshold (coarser quantization).
	if Vigilance(0.1, 3) >= Vigilance(0.5, 3) {
		t.Error("vigilance must grow with a")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1); err == nil {
		t.Error("zero dimension accepted")
	}
	if _, err := New(2, 0); err == nil {
		t.Error("zero vigilance accepted")
	}
	if _, err := New(2, math.NaN()); err == nil {
		t.Error("NaN vigilance accepted")
	}
	q, err := New(3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if q.Dim() != 3 || q.Vigilance() != 0.5 || q.K() != 0 {
		t.Errorf("fresh quantizer: dim=%d ρ=%v K=%d", q.Dim(), q.Vigilance(), q.K())
	}
}

func TestFirstObservationCreatesPrototype(t *testing.T) {
	q, _ := New(2, 0.5)
	obs, err := q.Observe(vector.Of(0.1, 0.2), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !obs.Created || obs.Winner != 0 || q.K() != 1 {
		t.Errorf("obs = %+v, K = %d", obs, q.K())
	}
	if !q.Prototype(0).Equal(vector.Of(0.1, 0.2)) {
		t.Errorf("prototype = %v", q.Prototype(0))
	}
	if q.Count(0) != 1 {
		t.Errorf("count = %d", q.Count(0))
	}
}

func TestObserveWithinVigilanceMovesWinner(t *testing.T) {
	q, _ := New(1, 1.0)
	_, _ = q.Observe(vector.Of(0.0), 0.5)
	obs, err := q.Observe(vector.Of(0.4), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if obs.Created {
		t.Fatal("observation within vigilance must not create a prototype")
	}
	// w moved from 0 toward 0.4 by eta=0.5: w = 0.2.
	if math.Abs(q.Prototype(0)[0]-0.2) > 1e-12 {
		t.Errorf("prototype after update = %v", q.Prototype(0))
	}
	if math.Abs(obs.Drift-0.2) > 1e-12 || math.Abs(q.LastDrift()-0.2) > 1e-12 {
		t.Errorf("drift = %v / %v", obs.Drift, q.LastDrift())
	}
	if math.Abs(obs.Distance-0.4) > 1e-12 {
		t.Errorf("distance = %v", obs.Distance)
	}
	if q.Count(0) != 2 {
		t.Errorf("count = %d", q.Count(0))
	}
}

func TestObserveBeyondVigilanceCreatesPrototype(t *testing.T) {
	q, _ := New(1, 0.5)
	_, _ = q.Observe(vector.Of(0.0), 0.5)
	obs, err := q.Observe(vector.Of(2.0), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !obs.Created || q.K() != 2 {
		t.Errorf("obs = %+v, K = %d", obs, q.K())
	}
	// The original prototype must be untouched.
	if q.Prototype(0)[0] != 0 {
		t.Errorf("non-winner moved: %v", q.Prototype(0))
	}
	if obs.Drift != 0 {
		t.Errorf("creation should report zero drift, got %v", obs.Drift)
	}
}

func TestObserveValidation(t *testing.T) {
	q, _ := New(2, 0.5)
	if _, err := q.Observe(vector.Of(1), 0.5); !errors.Is(err, ErrDimension) {
		t.Errorf("dim err = %v", err)
	}
	if _, err := q.Observe(vector.Of(1, 2), -0.1); err == nil {
		t.Error("negative learning rate accepted")
	}
	if _, err := q.Observe(vector.Of(1, 2), 1.5); err == nil {
		t.Error("learning rate > 1 accepted")
	}
	if _, err := q.Observe(vector.Of(1, 2), math.NaN()); err == nil {
		t.Error("NaN learning rate accepted")
	}
}

func TestWinner(t *testing.T) {
	q, _ := New(2, 10)
	if _, _, err := q.Winner(vector.Of(0, 0)); !errors.Is(err, ErrNoData) {
		t.Errorf("empty winner err = %v", err)
	}
	if _, _, err := q.Winner(vector.Of(0)); !errors.Is(err, ErrDimension) {
		t.Errorf("dim err = %v", err)
	}
	_, _ = q.Observe(vector.Of(0, 0), 0)
	_, _ = q.Observe(vector.Of(5, 5), 0) // within vigilance 10 → moves winner? eta=0, no move; same prototype
	// Force a second prototype by shrinking vigilance conceptually: rebuild.
	q2, _ := New(2, 1)
	_, _ = q2.Observe(vector.Of(0, 0), 0)
	_, _ = q2.Observe(vector.Of(5, 5), 0)
	k, d, err := q2.Winner(vector.Of(4.5, 5))
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 || math.Abs(d-0.5) > 1e-12 {
		t.Errorf("winner = %d at %v", k, d)
	}
}

func TestVigilanceControlsPrototypeCount(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sample := make([]vector.Vec, 2000)
	for i := range sample {
		sample[i] = vector.Of(rng.Float64(), rng.Float64())
	}
	countFor := func(vig float64) int {
		q, _ := New(2, vig)
		for t, x := range sample {
			eta := 1.0 / float64(t+2)
			if _, err := q.Observe(x, eta); err != nil {
				panic(err)
			}
		}
		return q.K()
	}
	coarse := countFor(1.5) // larger than the diameter of [0,1]² → one prototype
	medium := countFor(0.4)
	fine := countFor(0.1)
	if coarse != 1 {
		t.Errorf("coarse quantization K = %d, want 1", coarse)
	}
	if !(fine > medium && medium >= coarse) {
		t.Errorf("prototype counts not monotone in resolution: fine=%d medium=%d coarse=%d", fine, medium, coarse)
	}
}

func TestQuantizationErrorDecreasesWithResolution(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sample := make([]vector.Vec, 3000)
	for i := range sample {
		sample[i] = vector.Of(rng.Float64(), rng.Float64())
	}
	eqeFor := func(vig float64) float64 {
		q, _ := New(2, vig)
		for t, x := range sample {
			_, _ = q.Observe(x, 1.0/float64(t+2))
		}
		e, err := q.QuantizationError(sample)
		if err != nil {
			panic(err)
		}
		return e
	}
	if fine, coarse := eqeFor(0.1), eqeFor(1.5); fine >= coarse {
		t.Errorf("EQE should shrink with finer quantization: fine=%v coarse=%v", fine, coarse)
	}
}

func TestQuantizationErrorValidation(t *testing.T) {
	q, _ := New(2, 0.5)
	if _, err := q.QuantizationError([]vector.Vec{vector.Of(0, 0)}); !errors.Is(err, ErrNoData) {
		t.Errorf("empty quantizer err = %v", err)
	}
	_, _ = q.Observe(vector.Of(0, 0), 0.5)
	if _, err := q.QuantizationError(nil); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := q.QuantizationError([]vector.Vec{vector.Of(0)}); err == nil {
		t.Error("wrong-dim sample accepted")
	}
}

func TestPrototypesReturnsCopies(t *testing.T) {
	q, _ := New(2, 0.5)
	_, _ = q.Observe(vector.Of(1, 2), 0.5)
	ps := q.Prototypes()
	ps[0][0] = 99
	if q.Prototype(0)[0] == 99 {
		t.Error("Prototypes must return copies")
	}
	p := q.Prototype(0)
	p[1] = 99
	if q.Prototype(0)[1] == 99 {
		t.Error("Prototype must return a copy")
	}
}

func TestDriftShrinksWithLearningRateSchedule(t *testing.T) {
	// With a hyperbolic schedule and a stationary input distribution, the
	// per-step drift must eventually become small (convergence of Γ^J).
	rng := rand.New(rand.NewSource(3))
	q, _ := New(2, 0.6)
	var lastDrifts []float64
	for step := 0; step < 5000; step++ {
		x := vector.Of(rng.Float64(), rng.Float64())
		obs, err := q.Observe(x, 1.0/float64(step+2))
		if err != nil {
			t.Fatal(err)
		}
		if step >= 4900 {
			lastDrifts = append(lastDrifts, obs.Drift)
		}
	}
	var max float64
	for _, d := range lastDrifts {
		if d > max {
			max = d
		}
	}
	if max > 0.01 {
		t.Errorf("late-stage drift too large: %v", max)
	}
}

func BenchmarkObserve(b *testing.B) {
	q, _ := New(3, 0.4)
	rng := rand.New(rand.NewSource(1))
	xs := make([]vector.Vec, 1024)
	for i := range xs {
		xs[i] = vector.Of(rng.Float64(), rng.Float64(), rng.Float64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = q.Observe(xs[i%len(xs)], 0.01)
	}
}
