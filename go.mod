module llmq

go 1.24
