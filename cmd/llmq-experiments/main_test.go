package main

import "testing"

func TestRunFlagHandling(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Errorf("-list: %v", err)
	}
	if err := run([]string{"-scale", "bogus"}); err == nil {
		t.Error("unknown scale should fail")
	}
	if err := run([]string{"-experiment", "bogus"}); err == nil {
		t.Error("unknown experiment should fail")
	}
	if err := run([]string{"-not-a-flag"}); err == nil {
		t.Error("unknown flag should fail")
	}
}
