// Command llmq-experiments regenerates the paper's evaluation figures as
// text tables using the library's own substrates.
//
// Usage:
//
//	llmq-experiments [-scale quick|full] [-experiment fig09] [-list]
//
// Without -experiment every registered experiment runs in order. The quick
// scale finishes in well under a minute; the full scale reproduces the
// numbers recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"llmq/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "llmq-experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("llmq-experiments", flag.ContinueOnError)
	scaleName := fs.String("scale", "quick", "experiment scale: quick or full")
	expID := fs.String("experiment", "", "run a single experiment by id (default: all)")
	list := fs.Bool("list", false, "list available experiments and exit")
	seed := fs.Int64("seed", 0, "override the random seed (0 keeps the scale default)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-10s %s\n", e.ID, e.Description)
		}
		return nil
	}

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.Quick
	case "full":
		scale = experiments.Full
	default:
		return fmt.Errorf("unknown scale %q (want quick or full)", *scaleName)
	}
	if *seed != 0 {
		scale.Seed = *seed
	}

	selected := experiments.Registry()
	if *expID != "" {
		e, ok := experiments.Find(*expID)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", *expID)
		}
		selected = []experiments.Experiment{e}
	}

	fmt.Printf("running %d experiment(s) at scale %q\n\n", len(selected), scale.Name)
	for _, e := range selected {
		start := time.Now()
		if err := experiments.RunAndRender(e, scale, os.Stdout); err != nil {
			return err
		}
		fmt.Printf("[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
