package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"time"

	"llmq/internal/core"
	"llmq/internal/dataset"
	"llmq/internal/replica"
	"llmq/internal/resilience"
	"llmq/internal/serve"
	"llmq/internal/shard"
	"llmq/internal/wal"
)

// cmdServe stands up the HTTP analytics service of internal/serve over one
// CSV-backed relation: the exact executor answers plain statements, and a
// trained model (optional) answers APPROX statements without data access.
//
// The port is bound before the dataset load and WAL recovery run, serving
// the serve.Recovering stub until the real handler is ready: an
// orchestrator restarting the process sees /healthz up immediately and
// /readyz flip from "recovering" to "ready" when replay finishes, instead
// of connection refusals it cannot tell apart from a dead host.
func cmdServe(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	data := fs.String("data", "", "dataset CSV backing the relation (required)")
	modelPath := fs.String("model", "", "trained model JSON (optional; required for APPROX statements)")
	addr := fs.String("addr", ":8080", "listen address, host:port")
	cell := fs.Float64("cell", 0, "spatial-index cell size (default: auto from the data bounds)")
	dataDir := fs.String("data-dir", "", "durable model directory: recover the model from its snapshots+WAL on boot and WAL-log /train traffic (mutually exclusive with -model)")
	walSync := fs.String("wal-sync", "group", "WAL fsync policy under -data-dir: group, always or none")
	snapEvery := fs.Int("snapshot-every", 4096, "training pairs between WAL snapshot rotations under -data-dir")
	follow := fs.String("follow", "", "replicate a primary `llmq serve` instance at this base URL into -data-dir and serve read-only from it (POST /promote, or -promote-after, turns this instance into the primary)")
	promoteAfter := fs.Duration("promote-after", 0, "with -follow: auto-promote to primary after this long without primary contact; 0 requires an explicit POST /promote")
	shards := fs.Int("shards", 0, "partition the query space across this many in-process model shards (/train fans out across their writer locks; with -data-dir each shard keeps its own WAL subdirectory)")
	route := fs.String("route", "", "router mode: front remote shard servers, `shard0=URL[|followerURL...],shard1=...` (scans spread across a shard's followers; training goes to its primary)")
	partitionPath := fs.String("partition", "", "with -route: shards.json manifest pinning the partition the shards were trained under (default: rebuild it from -data, sound when this router is the sole trainer)")
	pprofAddr := fs.String("pprof", "", "also serve net/http/pprof profiling endpoints on this host:port (side listener, never on the public address)")
	getCap := capacityFlags(fs)
	getLimits := limitFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return errors.New("serve: -data is required")
	}
	if *dataDir != "" && *modelPath != "" {
		// The data dir is the durable source of truth; loading a second
		// model beside it would leave /train traffic split between two
		// states. `llmq train -data-dir` seeds a directory from scratch.
		return errors.New("serve: -model and -data-dir are mutually exclusive")
	}
	if *dataDir == "" && (*walSync != "group" || *snapEvery != 4096) {
		return errors.New("serve: -wal-sync/-snapshot-every need -data-dir")
	}
	if *follow != "" {
		switch {
		case *dataDir == "":
			// The mirror must live somewhere durable: a follower without a
			// data dir could neither resume after a restart nor be promoted.
			return errors.New("serve: -follow needs -data-dir for the local mirror")
		case *modelPath != "":
			return errors.New("serve: -follow and -model are mutually exclusive (the model ships from the primary)")
		case getCap().any():
			// A follower's state is exactly what the primary ships; local
			// capacity flags would fork it. Re-cap on the primary instead —
			// its SetCapacity is a WAL record and replicates.
			return errors.New("serve: capacity flags belong to the primary; its SetCapacity replicates to followers")
		}
	}
	if *promoteAfter != 0 && *follow == "" {
		return errors.New("serve: -promote-after needs -follow")
	}
	if *shards < 0 {
		return errors.New("serve: -shards must be positive")
	}
	if *shards > 0 && (*route != "" || *follow != "") {
		return errors.New("serve: -shards is exclusive with -route and -follow")
	}
	if *route != "" && (*modelPath != "" || *dataDir != "" || *follow != "") {
		return errors.New("serve: -route is exclusive with -model, -data-dir and -follow (the shards own the models)")
	}
	if *partitionPath != "" && *route == "" {
		return errors.New("serve: -partition needs -route")
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Bind first, build second: the listener answers with the recovering
	// stub while the dataset loads and the WAL replays, then the real
	// handler is swapped in atomically.
	var root handlerSwitch
	root.Store(serve.Recovering())
	errc := make(chan error, 1)
	go func() { errc <- serveUntil(ctx, &root, ln, out, "(recovering)") }()
	var (
		s        *serve.Server
		d        *core.Durable
		durables []*core.Durable
		rep      *replica.Replica
		info     string
	)
	switch {
	case *route != "":
		s, info, err = buildRouterServer(ctx, *data, *cell, *route, *partitionPath, serve.WithLimits(getLimits()))
	case *follow != "":
		s, rep, info, err = buildFollowerServer(ctx, *data, *dataDir, *follow, *walSync, *snapEvery, *promoteAfter, *cell, serve.WithLimits(getLimits()))
	case *dataDir != "" && (*shards > 0 || hasShardManifest(*dataDir)):
		// An existing shards.json makes the directory sharded regardless of
		// flags; -shards only decides the layout of a fresh directory.
		s, durables, info, err = buildDurableShardedServer(*data, *dataDir, *walSync, *snapEvery, *cell, *shards, getCap(), serve.WithLimits(getLimits()))
	case *dataDir != "":
		s, d, info, err = buildDurableServer(*data, *dataDir, *walSync, *snapEvery, *cell, getCap(), serve.WithLimits(getLimits()))
	case *shards > 0:
		s, info, err = buildShardedServer(*data, *modelPath, *cell, *shards, getCap(), serve.WithLimits(getLimits()))
	default:
		s, info, err = buildServer(*data, *modelPath, *cell, getCap(), serve.WithLimits(getLimits()))
	}
	if err != nil {
		stop()
		<-errc
		return fmt.Errorf("serve: %w", err)
	}
	if *pprofAddr != "" {
		stopPprof, perr := startPprof(*pprofAddr, out)
		if perr != nil {
			stop()
			<-errc
			return fmt.Errorf("serve: %w", perr)
		}
		defer stopPprof()
	}
	root.Store(s)
	fmt.Fprintf(out, "llmq: ready, serving %s\n", info)
	serr := <-errc
	if rep != nil {
		// A promoted follower owns a real durable store by now; a plain
		// follower just seals its mirror so the next boot resumes it.
		if d = rep.Durable(); d == nil {
			if cerr := rep.Close(); cerr != nil && serr == nil {
				serr = fmt.Errorf("serve: close replica: %w", cerr)
			}
		}
	}
	if d != nil {
		// The final checkpoint: pairs ingested since the last rotation are
		// folded into a fresh snapshot so the next boot replays nothing.
		if cerr := d.Close(); cerr != nil && serr == nil {
			serr = fmt.Errorf("serve: close durable store: %w", cerr)
		}
	}
	for i, sd := range durables {
		// Same final checkpoint, once per shard store.
		if cerr := sd.Close(); cerr != nil && serr == nil {
			serr = fmt.Errorf("serve: close shard %d store: %w", i, cerr)
		}
	}
	return serr
}

// hasShardManifest reports whether dataDir is a sharded durable directory.
func hasShardManifest(dataDir string) bool {
	_, err := os.Stat(filepath.Join(dataDir, shard.ManifestName))
	return err == nil
}

// startPprof serves the net/http/pprof endpoints on their own listener, off
// the public address: profiles expose internals (and /debug/pprof/profile
// blocks for seconds), so they belong on a port the operator can firewall
// separately. The explicit mux keeps them off http.DefaultServeMux too.
func startPprof(addr string, out io.Writer) (func(), error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pprof: %w", err)
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	fmt.Fprintf(out, "llmq: pprof on http://%s/debug/pprof/\n", ln.Addr())
	return func() { _ = srv.Close() }, nil
}

// buildFollowerServer wires a read-only follower: a replica mirroring the
// primary's WAL into dataDir (started on ctx — it stops with the serve
// loop) and the HTTP handler reading from it. The follower serves APPROX
// and EXACT statements from its own replicated model throughout, refuses
// /train with a redirect to the primary, and becomes a writable primary on
// POST /promote or, with promoteAfter, on its own once the primary has
// been unreachable that long.
func buildFollowerServer(ctx context.Context, dataPath, dataDir, primary, walSync string, snapEvery int, promoteAfter time.Duration, cell float64, opts ...serve.Option) (*serve.Server, *replica.Replica, string, error) {
	e, ds, err := loadExecutor(dataPath, cell)
	if err != nil {
		return nil, nil, "", err
	}
	mode, err := wal.ParseSyncMode(walSync)
	if err != nil {
		return nil, nil, "", err
	}
	rep, err := replica.Open(replica.Options{
		Dir:           dataDir,
		Primary:       primary,
		PromoteAfter:  promoteAfter,
		WAL:           wal.Options{Mode: mode},
		SnapshotEvery: snapEvery,
	})
	if err != nil {
		return nil, nil, "", err
	}
	s, err := serve.NewFollower(e, rep, opts...)
	if err != nil {
		return nil, nil, "", err
	}
	go func() { _ = rep.Run(ctx) }()
	info := fmt.Sprintf("%q (%d tuples, %d input attributes) as a follower of %s (mirror in %s, %s sync)",
		ds.Name, ds.Len(), ds.Dim(), primary, dataDir, mode)
	return s, rep, info, nil
}

// handlerSwitch is an atomically swappable http.Handler: the listener
// serves the recovering stub through it until cmdServe stores the real
// server, without restarting the http.Server.
type handlerSwitch struct {
	h atomic.Pointer[http.Handler]
}

func (hs *handlerSwitch) Store(h http.Handler) { hs.h.Store(&h) }

func (hs *handlerSwitch) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	(*hs.h.Load()).ServeHTTP(w, r)
}

// limitFlags registers the overload-limit flags of the serve subcommand;
// call the returned function after fs.Parse to collect the serve.Limits.
func limitFlags(fs *flag.FlagSet) func() serve.Limits {
	queryTimeout := fs.Duration("query-timeout", 30*time.Second, "per-request deadline on /query and /query/batch; 0 disables")
	admitQueries := fs.Int("admit-queries", 0, "admission capacity of the query class in statements (default: 4×GOMAXPROCS)")
	admitTrain := fs.Int("admit-train", 0, "admission capacity of the train class in pairs (default: 8192)")
	admitWait := fs.Duration("admit-wait", 100*time.Millisecond, "how long a request may wait for admission before a 429 shed")
	degradeExact := fs.Bool("degrade-exact", false, "during overload, answer EXACT-eligible statements from the model (marked \"degraded\": true) instead of shedding them")
	maxLag := fs.Int("max-replication-lag", 0, "with -follow: records of replication lag past which /readyz reports not-ready (default 4096; negative disables)")
	batchWindow := fs.Duration("batch-window", 0, "coalesce concurrent /query requests arriving within this window into one batch sheet (0.5ms-2ms is the useful range; 0 disables)")
	batchMaxSheet := fs.Int("batch-max-sheet", 0, "statements per coalesced sheet before an overflow cut (default 64; only with -batch-window)")
	return func() serve.Limits {
		l := serve.Limits{
			QueryConcurrency:  *admitQueries,
			TrainConcurrency:  *admitTrain,
			AdmitWait:         *admitWait,
			QueryTimeout:      *queryTimeout,
			DegradeExact:      *degradeExact,
			MaxReplicationLag: *maxLag,
			BatchWindow:       *batchWindow,
			BatchMaxSheet:     *batchMaxSheet,
		}
		if *queryTimeout <= 0 {
			l.QueryTimeout = -1 // Limits semantics: 0 means default, negative disables
		}
		if *admitWait <= 0 {
			l.AdmitWait = -1
		}
		return l
	}
}

// shutdownTimeout bounds the graceful drain: in-flight handlers get this
// long to finish after the stop signal before Shutdown gives up.
const shutdownTimeout = 10 * time.Second

// serveUntil runs the HTTP server on ln until ctx is canceled — SIGINT or
// SIGTERM in production (cmdServe wires signal.NotifyContext); the smoke
// test cancels directly — and then shuts down gracefully. ctx doubles as
// the server's base context, so the request context of every in-flight
// statement sheet observes the cancellation: the /query/batch worker pools
// stop claiming statements mid-sheet (the MeanBatchCtx/ForEachParallelCtx
// plumbing), while http.Server.Shutdown stops the listener and drains the
// handlers that are finishing up. The server carries the full set of
// connection-phase timeouts (resilience.ServerTimeouts), so a slow-loris
// client cannot pin goroutines through a stalled header, body or read.
func serveUntil(ctx context.Context, h http.Handler, ln net.Listener, out io.Writer, info string) error {
	fmt.Fprintf(out, "llmq: serving %s on http://%s\n", info, ln.Addr())
	srv := resilience.NewHTTPServer(h, resilience.ServerTimeouts{})
	srv.BaseContext = func(net.Listener) context.Context { return ctx }
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		// The listener failed before any shutdown was requested.
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "llmq: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// buildServer loads the relation (and the model, when given), validates the
// two against each other, applies any serving-time capacity cap, and wires
// the HTTP handler. Split from cmdServe so the smoke test can drive the
// full construction path without binding a port.
func buildServer(dataPath, modelPath string, cell float64, cp capacity, opts ...serve.Option) (*serve.Server, string, error) {
	e, ds, err := loadExecutor(dataPath, cell)
	if err != nil {
		return nil, "", err
	}
	var model *core.Model
	if modelPath == "" {
		if cp.any() {
			// Silently ignoring the flags would let an operator believe a
			// serving budget is armed when nothing is bounded.
			return nil, "", errors.New("-max-prototypes/-evict/-merge need -model")
		}
	} else {
		model, err = loadModel(modelPath, ds.Dim())
		if err != nil {
			return nil, "", err
		}
		if err := applyCapacity(model, cp); err != nil {
			return nil, "", err
		}
	}
	s, err := serve.New(e, model, opts...)
	if err != nil {
		return nil, "", err
	}
	info := fmt.Sprintf("%q (%d tuples, %d input attributes)", ds.Name, ds.Len(), ds.Dim())
	if model != nil {
		info += fmt.Sprintf(" with a K=%d model", model.K())
	} else {
		info += " without a model (exact statements only)"
	}
	return s, info, nil
}

// buildDurableServer recovers (or freshly creates) the durable model in
// dataDir and wires the HTTP handler around it: statements answer from the
// recovered state, and /train traffic is write-ahead logged. A fresh
// directory starts an empty model with the paper's default configuration
// derived from the dataset (the same vigilance formula the train subcommand
// uses, at its default resolution); a recovered one keeps the configuration
// embedded in its snapshot. Capacity flags apply either way, through the
// durable store's WAL-logged SetCapacity: the re-cap is an admin record in
// the training order, so a crash replays it at exactly this point — and a
// follower replica re-caps at the same point of the stream.
func buildDurableServer(dataPath, dataDir, walSync string, snapEvery int, cell float64, cp capacity, opts ...serve.Option) (*serve.Server, *core.Durable, string, error) {
	e, ds, err := loadExecutor(dataPath, cell)
	if err != nil {
		return nil, nil, "", err
	}
	mode, err := wal.ParseSyncMode(walSync)
	if err != nil {
		return nil, nil, "", err
	}
	cfg, err := defaultModelConfig(ds)
	if err != nil {
		return nil, nil, "", err
	}
	if cp.maxProto > 0 {
		// Bake the capacity into the fresh-directory config too, so the very
		// first checkpoint already carries it.
		policy, perr := core.ParseEvictionPolicy(cp.evict)
		if perr != nil {
			return nil, nil, "", perr
		}
		cfg.MaxPrototypes = cp.maxProto
		cfg.Eviction = policy
		cfg.MergeOnEvict = cp.merge
	}
	d, err := core.Recover(dataDir, cfg, core.DurableOptions{
		WAL:           wal.Options{Mode: mode},
		SnapshotEvery: snapEvery,
	})
	if err != nil {
		return nil, nil, "", err
	}
	fail := func(err error) (*serve.Server, *core.Durable, string, error) {
		_ = d.Close()
		return nil, nil, "", err
	}
	if cp.any() {
		max, policy, merge, err := resolveCapacity(d.Model().Config(), cp)
		if err != nil {
			return fail(err)
		}
		if err := d.SetCapacity(max, policy, merge); err != nil {
			return fail(err)
		}
	}
	if k := d.Model().Config().Dim; k != ds.Dim() {
		return fail(fmt.Errorf("recovered model dim %d does not match the relation's %d input attributes", k, ds.Dim()))
	}
	s, err := serve.NewDurable(e, d, opts...)
	if err != nil {
		return fail(err)
	}
	info := fmt.Sprintf("%q (%d tuples, %d input attributes) with a durable K=%d model (%d steps, %s sync) in %s",
		ds.Name, ds.Len(), ds.Dim(), d.Model().K(), d.Model().Steps(), mode, dataDir)
	return s, d, info, nil
}

// defaultModelConfig derives the fresh-directory training configuration from
// the dataset: the paper's defaults with the vigilance formula the train
// subcommand uses at its default resolution a and mean radius.
func defaultModelConfig(ds *dataset.Dataset) (core.Config, error) {
	b, err := ds.Bounds()
	if err != nil {
		return core.Config{}, err
	}
	span := 0.0
	for j := range b.InputMax {
		span += b.InputMax[j] - b.InputMin[j]
	}
	span /= float64(ds.Dim())
	theta := span / 10
	cfg := core.DefaultConfig(ds.Dim())
	cfg.Vigilance = 0.25 * (span*sqrtDim(ds.Dim()) + theta)
	return cfg, nil
}
