package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"llmq/internal/core"
	"llmq/internal/serve"
)

// cmdServe stands up the HTTP analytics service of internal/serve over one
// CSV-backed relation: the exact executor answers plain statements, and a
// trained model (optional) answers APPROX statements without data access.
func cmdServe(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	data := fs.String("data", "", "dataset CSV backing the relation (required)")
	modelPath := fs.String("model", "", "trained model JSON (optional; required for APPROX statements)")
	addr := fs.String("addr", ":8080", "listen address, host:port")
	cell := fs.Float64("cell", 0, "spatial-index cell size (default: auto from the data bounds)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return errors.New("serve: -data is required")
	}
	s, info, err := buildServer(*data, *modelPath, *cell)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	fmt.Fprintf(out, "llmq: serving %s on http://%s\n", info, ln.Addr())
	srv := &http.Server{Handler: s, ReadHeaderTimeout: 10 * time.Second}
	return srv.Serve(ln)
}

// buildServer loads the relation (and the model, when given), validates the
// two against each other, and wires the HTTP handler. Split from cmdServe so
// the smoke test can drive the full construction path without binding a
// port.
func buildServer(dataPath, modelPath string, cell float64) (*serve.Server, string, error) {
	e, ds, err := loadExecutor(dataPath, cell)
	if err != nil {
		return nil, "", err
	}
	var model *core.Model
	if modelPath != "" {
		model, err = loadModel(modelPath, ds.Dim())
		if err != nil {
			return nil, "", err
		}
	}
	s, err := serve.New(e, model)
	if err != nil {
		return nil, "", err
	}
	info := fmt.Sprintf("%q (%d tuples, %d input attributes)", ds.Name, ds.Len(), ds.Dim())
	if model != nil {
		info += fmt.Sprintf(" with a K=%d model", model.K())
	} else {
		info += " without a model (exact statements only)"
	}
	return s, info, nil
}
