package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"llmq/internal/core"
	"llmq/internal/serve"
)

// cmdServe stands up the HTTP analytics service of internal/serve over one
// CSV-backed relation: the exact executor answers plain statements, and a
// trained model (optional) answers APPROX statements without data access.
func cmdServe(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	data := fs.String("data", "", "dataset CSV backing the relation (required)")
	modelPath := fs.String("model", "", "trained model JSON (optional; required for APPROX statements)")
	addr := fs.String("addr", ":8080", "listen address, host:port")
	cell := fs.Float64("cell", 0, "spatial-index cell size (default: auto from the data bounds)")
	getCap := capacityFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return errors.New("serve: -data is required")
	}
	s, info, err := buildServer(*data, *modelPath, *cell, getCap())
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return serveUntil(ctx, s, ln, out, info)
}

// shutdownTimeout bounds the graceful drain: in-flight handlers get this
// long to finish after the stop signal before Shutdown gives up.
const shutdownTimeout = 10 * time.Second

// serveUntil runs the HTTP server on ln until ctx is canceled — SIGINT or
// SIGTERM in production (cmdServe wires signal.NotifyContext); the smoke
// test cancels directly — and then shuts down gracefully. ctx doubles as
// the server's base context, so the request context of every in-flight
// statement sheet observes the cancellation: the /query/batch worker pools
// stop claiming statements mid-sheet (the MeanBatchCtx/ForEachParallelCtx
// plumbing), while http.Server.Shutdown stops the listener and drains the
// handlers that are finishing up.
func serveUntil(ctx context.Context, s *serve.Server, ln net.Listener, out io.Writer, info string) error {
	fmt.Fprintf(out, "llmq: serving %s on http://%s\n", info, ln.Addr())
	srv := &http.Server{
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return ctx },
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		// The listener failed before any shutdown was requested.
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "llmq: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// buildServer loads the relation (and the model, when given), validates the
// two against each other, applies any serving-time capacity cap, and wires
// the HTTP handler. Split from cmdServe so the smoke test can drive the
// full construction path without binding a port.
func buildServer(dataPath, modelPath string, cell float64, cp capacity) (*serve.Server, string, error) {
	e, ds, err := loadExecutor(dataPath, cell)
	if err != nil {
		return nil, "", err
	}
	var model *core.Model
	if modelPath == "" {
		if cp.any() {
			// Silently ignoring the flags would let an operator believe a
			// serving budget is armed when nothing is bounded.
			return nil, "", errors.New("-max-prototypes/-evict/-merge need -model")
		}
	} else {
		model, err = loadModel(modelPath, ds.Dim())
		if err != nil {
			return nil, "", err
		}
		if err := applyCapacity(model, cp); err != nil {
			return nil, "", err
		}
	}
	s, err := serve.New(e, model)
	if err != nil {
		return nil, "", err
	}
	info := fmt.Sprintf("%q (%d tuples, %d input attributes)", ds.Name, ds.Len(), ds.Dim())
	if model != nil {
		info += fmt.Sprintf(" with a K=%d model", model.K())
	} else {
		info += " without a model (exact statements only)"
	}
	return s, info, nil
}
