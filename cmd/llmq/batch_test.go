package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// setupBatchEnv generates a dataset and trains a model once for the batch
// subcommand tests.
func setupBatchEnv(t *testing.T) (data, model string) {
	t.Helper()
	dir := t.TempDir()
	data = filepath.Join(dir, "r1.csv")
	model = filepath.Join(dir, "model.json")
	var out bytes.Buffer
	if err := run([]string{"generate", "-dataset", "R1", "-n", "4000", "-dim", "2", "-seed", "3", "-o", data}, &out); err != nil {
		t.Fatalf("generate: %v", err)
	}
	if err := run([]string{"train", "-data", data, "-a", "0.2", "-pairs", "1200", "-o", model}, &out); err != nil {
		t.Fatalf("train: %v", err)
	}
	return data, model
}

func writeStatements(t *testing.T, lines ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "statements.sql")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBatchAllApproxMean(t *testing.T) {
	data, model := setupBatchEnv(t)
	file := writeStatements(t,
		"# a comment line",
		"SELECT APPROX AVG(u) FROM r1 WITHIN 0.2 OF (0.5, 0.5)",
		"",
		"SELECT APPROX AVG(u) FROM r1 WITHIN 0.15 OF (0.3, 0.7)",
		"SELECT APPROX AVG(u) FROM r1 WITHIN 0.1 OF (0.8, 0.2)",
	)
	var out bytes.Buffer
	if err := run([]string{"batch", "-data", data, "-model", model, "-file", file}, &out); err != nil {
		t.Fatalf("batch: %v", err)
	}
	got := out.String()
	for _, want := range []string{"[1] approx AVG(u)", "[2]", "[3]", "answered 3 statements"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestBatchMixedStatements(t *testing.T) {
	data, model := setupBatchEnv(t)
	file := writeStatements(t,
		"SELECT AVG(u) FROM r1 WITHIN 0.2 OF (0.5, 0.5)",
		"SELECT APPROX REGRESSION(u) FROM r1 WITHIN 0.2 OF (0.5, 0.5)",
		"SELECT AVG(u) FROM r1 WITHIN 0.0000001 OF (0.9, 0.9)", // empty subspace
	)
	var out bytes.Buffer
	if err := run([]string{"batch", "-data", data, "-model", model, "-file", file}, &out); err != nil {
		t.Fatalf("batch: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "[1] AVG(u)") {
		t.Errorf("exact result missing:\n%s", got)
	}
	if !strings.Contains(got, "local linear model") {
		t.Errorf("regression result missing:\n%s", got)
	}
	if !strings.Contains(got, "[3] error:") {
		t.Errorf("empty-subspace error missing:\n%s", got)
	}
}

func TestBatchErrors(t *testing.T) {
	data, _ := setupBatchEnv(t)
	okFile := writeStatements(t, "SELECT APPROX AVG(u) FROM r1 WITHIN 0.2 OF (0.5, 0.5)")
	var out bytes.Buffer
	cases := [][]string{
		{"batch"},                // missing flags
		{"batch", "-data", data}, // missing file
		{"batch", "-data", data, "-file", "/nope.sql"}, // unreadable file
		{"batch", "-data", data, "-file", okFile},      // approx without model
		{"batch", "-data", data, "-file", writeStatements(t, "# only comments")},
		{"batch", "-data", data, "-file", writeStatements(t, "NOT SQL")},
		{"batch", "-data", data, "-file", writeStatements(t, "SELECT AVG(u) FROM r1 WITHIN 0.1 OF (0.5)")}, // wrong dim
	}
	for _, args := range cases {
		if err := run(args, &out); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}
