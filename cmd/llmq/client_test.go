package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
)

// TestRemoteBatchAndTrain drives the -url client modes end to end against a
// real serve handler: batch ships a statement sheet to /query/batch and
// prints positional answers, train computes pairs locally and ships them to
// /train — and both retry through a shedding front that 429s the first
// attempt, exercising the resilience.Do path.
func TestRemoteBatchAndTrain(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "r1.csv")
	var out bytes.Buffer
	if err := run([]string{"generate", "-dataset", "R1", "-n", "3000", "-dim", "2", "-seed", "9", "-o", data}, &out); err != nil {
		t.Fatalf("generate: %v", err)
	}
	model := filepath.Join(dir, "model.json")
	if err := run([]string{"train", "-data", data, "-a", "0.2", "-pairs", "300", "-o", model}, &out); err != nil {
		t.Fatalf("train: %v", err)
	}
	s, _, err := buildServer(data, model, 0, capacity{})
	if err != nil {
		t.Fatalf("buildServer: %v", err)
	}
	// A flaky front: every other request is shed with 429 + Retry-After
	// before reaching the server, so the client must retry to succeed.
	var n atomic.Int64
	front := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%2 == 1 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error": "overloaded"}`, http.StatusTooManyRequests)
			return
		}
		s.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(front)
	defer ts.Close()

	stmts := filepath.Join(dir, "stmts.sql")
	sheet := "SELECT AVG(u) FROM r1 WITHIN 0.2 OF (0.5, 0.5)\n# comment\nSELECT VALUE(u) FROM r1 AT (0.5, 0.5) WITHIN 0.2 OF (0.5, 0.5)\n"
	if err := os.WriteFile(stmts, []byte(sheet), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"batch", "-url", ts.URL, "-file", stmts}, &out); err != nil {
		t.Fatalf("remote batch: %v\n%s", err, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "[1] AVG =") || !strings.Contains(got, "[2] VALUE =") || !strings.Contains(got, "answered 2 statements") {
		t.Errorf("remote batch output:\n%s", got)
	}

	out.Reset()
	if err := run([]string{"train", "-data", data, "-url", ts.URL, "-pairs", "40"}, &out); err != nil {
		t.Fatalf("remote train: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "shipped 40 training pairs") {
		t.Errorf("remote train output:\n%s", out.String())
	}

	// Flag validation: remote mode owns no local model state.
	if err := run([]string{"batch", "-url", ts.URL, "-file", stmts, "-data", data}, &out); err == nil {
		t.Error("batch -url with -data should error")
	}
	if err := run([]string{"train", "-data", data, "-url", ts.URL, "-data-dir", dir}, &out); err == nil {
		t.Error("train -url with -data-dir should error")
	}
}
