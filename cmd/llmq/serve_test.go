package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestServeSmoke drives the serve subcommand's construction path end to end
// — generate a dataset, train a model, build the HTTP server from the same
// flags cmdServe uses — and smokes the mounted endpoints through httptest.
func TestServeSmoke(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "r1.csv")
	model := filepath.Join(dir, "model.json")
	var out bytes.Buffer
	if err := run([]string{"generate", "-dataset", "R1", "-n", "4000", "-dim", "2", "-seed", "3", "-o", data}, &out); err != nil {
		t.Fatalf("generate: %v", err)
	}
	if err := run([]string{"train", "-data", data, "-a", "0.2", "-pairs", "1500", "-o", model}, &out); err != nil {
		t.Fatalf("train: %v", err)
	}

	s, info, err := buildServer(data, model, 0, capacity{})
	if err != nil {
		t.Fatalf("buildServer: %v", err)
	}
	if !strings.Contains(info, "K=") {
		t.Errorf("server info %q should mention the model size", info)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	body := `{"sql": "SELECT APPROX AVG(u) FROM r1 WITHIN 0.15 OF (0.5, 0.5)"}`
	resp, err = http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var qr struct {
		Mean *float64 `json:"mean"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || qr.Mean == nil {
		t.Fatalf("APPROX query failed: status %d, body %+v", resp.StatusCode, qr)
	}

	// Without a model, APPROX statements are rejected but the server stands.
	s2, info2, err := buildServer(data, "", 0, capacity{})
	if err != nil {
		t.Fatalf("buildServer without model: %v", err)
	}
	if !strings.Contains(info2, "without a model") {
		t.Errorf("server info %q should flag the missing model", info2)
	}
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	resp, err = http.Post(ts2.URL+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("APPROX without model: status %d, want 409", resp.StatusCode)
	}
}

// TestServeGracefulShutdown smokes the serve run loop end to end: a real
// listener answers requests, then a context cancellation (the SIGINT/
// SIGTERM path of cmdServe) makes serveUntil drain and return cleanly, and
// the port stops accepting connections.
func TestServeGracefulShutdown(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "r1.csv")
	var out bytes.Buffer
	if err := run([]string{"generate", "-dataset", "R1", "-n", "2000", "-dim", "2", "-seed", "5", "-o", data}, &out); err != nil {
		t.Fatalf("generate: %v", err)
	}
	s, info, err := buildServer(data, "", 0, capacity{})
	if err != nil {
		t.Fatalf("buildServer: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + ln.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	var serveOut bytes.Buffer
	go func() { done <- serveUntil(ctx, s, ln, &serveOut, info) }()

	// The server is accepting before serveUntil is asked to stop.
	var resp *http.Response
	for i := 0; i < 100; i++ {
		resp, err = http.Get(url + "/healthz")
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("healthz never came up: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	body := `{"sql": ["SELECT AVG(u) FROM r1 WITHIN 0.1 OF (0.5, 0.5)"]}`
	resp, err = http.Post(url+"/query/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveUntil returned %v after cancellation, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serveUntil did not drain within 5s of cancellation")
	}
	if !strings.Contains(serveOut.String(), "shutting down") {
		t.Errorf("serve output %q should announce the shutdown", serveOut.String())
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Error("the listener should be closed after shutdown")
	}
}

// TestServeFlagValidation covers the argument error paths.
func TestServeFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"serve"}, &out); err == nil {
		t.Error("serve without -data should error")
	}
	if err := run([]string{"serve", "-data", "/nonexistent.csv"}, &out); err == nil {
		t.Error("serve with a missing dataset should error")
	}
	if err := run([]string{"serve", "-bogusflag"}, &out); err == nil {
		t.Error("unknown flag should error")
	}
}

// writeTestCSV generates a small real dataset, so a flag combination that
// wrongly passed validation would fail on its own merits, not on a missing
// file.
func writeTestCSV(t *testing.T) string {
	t.Helper()
	data := filepath.Join(t.TempDir(), "r1.csv")
	var out bytes.Buffer
	if err := run([]string{"generate", "-dataset", "R1", "-n", "200", "-dim", "2", "-seed", "3", "-o", data}, &out); err != nil {
		t.Fatal(err)
	}
	return data
}

// TestServeFollowFlagValidation: the replication flags have hard
// prerequisites — a mirror directory, no local model, and no local capacity
// overrides (those ship from the primary).
func TestServeFollowFlagValidation(t *testing.T) {
	var out bytes.Buffer
	csv := writeTestCSV(t)
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"follow without data-dir", []string{"serve", "-data", csv, "-follow", "http://localhost:1"}},
		{"follow with model", []string{"serve", "-data", csv, "-follow", "http://localhost:1", "-data-dir", t.TempDir(), "-model", "m.json"}},
		{"follow with capacity flags", []string{"serve", "-data", csv, "-follow", "http://localhost:1", "-data-dir", t.TempDir(), "-max-prototypes", "8"}},
		{"promote-after without follow", []string{"serve", "-data", csv, "-promote-after", "5s", "-data-dir", t.TempDir()}},
	} {
		if err := run(tc.args, &out); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
