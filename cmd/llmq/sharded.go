package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"llmq/internal/core"
	"llmq/internal/dataset"
	"llmq/internal/index"
	"llmq/internal/serve"
	"llmq/internal/shard"
	"llmq/internal/wal"
)

// Sharded serving modes of `llmq serve`:
//
//	-shards N              run N model shards in this process: /train
//	                       partitions pairs across them (N writer locks
//	                       instead of one), queries scatter/gather the
//	                       union answer; with -data-dir each shard gets
//	                       its own WAL directory and shards.json pins the
//	                       partition across restarts
//	-route shard0=URL,...  front remote shard servers: scans scatter over
//	                       HTTP (spread across a shard's |-separated
//	                       follower replicas), training goes to each
//	                       shard's primary
//
// Every plain `llmq serve` instance already speaks the shard protocol, so
// any of them can stand behind a router.

// buildPartition derives the space partition from the relation itself: the
// input vectors are the best available sample of where queries will land.
// Cuts are balanced count quantiles, grid-snapped for d ≤ 3 (cell from the
// data bounds) like the read-epoch grids.
func buildPartition(ds *dataset.Dataset, shards int) (*index.Partition, error) {
	flat := make([]float64, 0, len(ds.Xs)*ds.Dim())
	for _, x := range ds.Xs {
		flat = append(flat, x...)
	}
	cell := 0.0
	if ds.Dim() <= 3 {
		if b, err := ds.Bounds(); err == nil {
			span := 0.0
			for j := range b.InputMax {
				span += b.InputMax[j] - b.InputMin[j]
			}
			cell = span / float64(ds.Dim()) / 64
		}
	}
	return index.NewPartition(ds.Dim(), shards, flat, cell)
}

// buildShardedServer wires in-process sharded serving over in-memory
// models: N fresh shards (or, with a model file, the model split along the
// partition), behind the scatter/gather front-end. Capacity flags apply
// per shard.
func buildShardedServer(dataPath, modelPath string, cell float64, shards int, cp capacity, opts ...serve.Option) (*serve.Server, string, error) {
	e, ds, err := loadExecutor(dataPath, cell)
	if err != nil {
		return nil, "", err
	}
	part, err := buildPartition(ds, shards)
	if err != nil {
		return nil, "", err
	}
	var models []*core.Model
	if modelPath != "" {
		parent, err := loadModel(modelPath, ds.Dim())
		if err != nil {
			return nil, "", err
		}
		models, err = core.Split(parent, shards, func(center []float64, _ float64) int {
			return part.Locate(center)
		})
		if err != nil {
			return nil, "", err
		}
	} else {
		cfg, err := defaultModelConfig(ds)
		if err != nil {
			return nil, "", err
		}
		models = make([]*core.Model, shards)
		for i := range models {
			if models[i], err = core.NewModel(cfg); err != nil {
				return nil, "", err
			}
		}
	}
	backends := make([]shard.Backend, shards)
	total := 0
	for i, m := range models {
		if cp.any() {
			if err := applyCapacity(m, cp); err != nil {
				return nil, "", err
			}
		}
		total += m.K()
		backends[i] = shard.NewLocal(m)
	}
	sh, err := shard.New(part, backends)
	if err != nil {
		return nil, "", err
	}
	s, err := serve.NewSharded(e, sh, opts...)
	if err != nil {
		return nil, "", err
	}
	info := fmt.Sprintf("%q (%d tuples, %d input attributes) across %d in-process shards (K=%d total)",
		ds.Name, ds.Len(), ds.Dim(), shards, total)
	return s, info, nil
}

// buildDurableShardedServer wires durable sharded serving: each shard
// recovers from its own WAL subdirectory of dataDir, and shards.json pins
// the partition so every boot routes exactly as the one that placed the
// prototypes. A fresh directory builds the partition from the dataset and
// writes the manifest first, so a crash between shard creations recovers
// cleanly. Training fans out to per-shard WALs, fsyncing in parallel.
func buildDurableShardedServer(dataPath, dataDir, walSync string, snapEvery int, cell float64, shards int, cp capacity, opts ...serve.Option) (*serve.Server, []*core.Durable, string, error) {
	e, ds, err := loadExecutor(dataPath, cell)
	if err != nil {
		return nil, nil, "", err
	}
	mode, err := wal.ParseSyncMode(walSync)
	if err != nil {
		return nil, nil, "", err
	}
	manifestPath := filepath.Join(dataDir, shard.ManifestName)
	var man shard.Manifest
	if _, serr := os.Stat(manifestPath); serr == nil {
		if man, err = shard.ReadManifest(manifestPath); err != nil {
			return nil, nil, "", err
		}
		if man.Dim != ds.Dim() {
			return nil, nil, "", fmt.Errorf("sharded directory %s has dim %d, relation has %d", dataDir, man.Dim, ds.Dim())
		}
		if shards != 0 && shards != man.Shards {
			return nil, nil, "", fmt.Errorf("-shards %d conflicts with the %d shards recorded in %s (re-sharding a durable directory is an offline operation)",
				shards, man.Shards, manifestPath)
		}
	} else {
		part, perr := buildPartition(ds, shards)
		if perr != nil {
			return nil, nil, "", perr
		}
		if err := os.MkdirAll(dataDir, 0o755); err != nil {
			return nil, nil, "", err
		}
		man = shard.Manifest{Dim: ds.Dim(), Shards: shards, Part: part}
		if err := shard.WriteManifest(manifestPath, man); err != nil {
			return nil, nil, "", err
		}
	}
	cfg, err := defaultModelConfig(ds)
	if err != nil {
		return nil, nil, "", err
	}
	durables := make([]*core.Durable, 0, man.Shards)
	fail := func(err error) (*serve.Server, []*core.Durable, string, error) {
		for _, d := range durables {
			_ = d.Close()
		}
		return nil, nil, "", err
	}
	backends := make([]shard.Backend, man.Shards)
	totalK, totalSteps := 0, 0
	for i := 0; i < man.Shards; i++ {
		d, derr := core.Recover(filepath.Join(dataDir, fmt.Sprintf("shard-%d", i)), cfg, core.DurableOptions{
			WAL:           wal.Options{Mode: mode},
			SnapshotEvery: snapEvery,
		})
		if derr != nil {
			return fail(fmt.Errorf("shard %d: %w", i, derr))
		}
		durables = append(durables, d)
		if cp.any() {
			max, policy, merge, cerr := resolveCapacity(d.Model().Config(), cp)
			if cerr != nil {
				return fail(cerr)
			}
			if err := d.SetCapacity(max, policy, merge); err != nil {
				return fail(fmt.Errorf("shard %d: %w", i, err))
			}
		}
		totalK += d.Model().K()
		totalSteps += d.Model().Steps()
		backends[i] = shard.NewLocalDurable(d)
	}
	sh, err := shard.New(man.Part, backends)
	if err != nil {
		return fail(err)
	}
	s, err := serve.NewSharded(e, sh, opts...)
	if err != nil {
		return fail(err)
	}
	info := fmt.Sprintf("%q (%d tuples, %d input attributes) across %d durable shards (K=%d total, %d steps, %s sync) in %s",
		ds.Name, ds.Len(), ds.Dim(), man.Shards, totalK, totalSteps, mode, dataDir)
	return s, durables, info, nil
}

// parseRouteSpec parses `-route shard0=URL[|followerURL...],shard1=...`:
// one entry per shard, named by position, each a primary base URL plus
// optional |-separated follower URLs scans may be spread across.
func parseRouteSpec(spec string) ([][]string, error) {
	entries := strings.Split(spec, ",")
	urls := make([][]string, len(entries))
	for _, entry := range entries {
		name, rest, ok := strings.Cut(strings.TrimSpace(entry), "=")
		if !ok {
			return nil, fmt.Errorf("route entry %q is not shardN=URL", entry)
		}
		idStr, found := strings.CutPrefix(name, "shard")
		if !found {
			return nil, fmt.Errorf("route entry %q must be named shardN", entry)
		}
		id, err := strconv.Atoi(idStr)
		if err != nil || id < 0 || id >= len(urls) {
			return nil, fmt.Errorf("route entry %q names shard %q; have %d entries so ids run 0..%d",
				entry, idStr, len(urls), len(urls)-1)
		}
		if urls[id] != nil {
			return nil, fmt.Errorf("route names shard%d twice", id)
		}
		reps := strings.Split(rest, "|")
		for i, u := range reps {
			reps[i] = strings.TrimRight(strings.TrimSpace(u), "/")
			if reps[i] == "" {
				return nil, fmt.Errorf("route entry %q has an empty URL", entry)
			}
		}
		urls[id] = reps
	}
	return urls, nil
}

// buildRouterServer wires router mode: remote shard backends over HTTP,
// routed by the manifest's partition when -partition is given, or by a
// partition rebuilt from the local relation (sound when this router is the
// shards' sole trainer — the prototypes were then placed by this very
// partitioning of /train traffic). EXACT statements answer from this
// process's relation copy; the relation itself is not sharded.
func buildRouterServer(ctx context.Context, dataPath string, cell float64, routeSpec, partitionPath string, opts ...serve.Option) (*serve.Server, string, error) {
	e, ds, err := loadExecutor(dataPath, cell)
	if err != nil {
		return nil, "", err
	}
	urls, err := parseRouteSpec(routeSpec)
	if err != nil {
		return nil, "", fmt.Errorf("-route: %w", err)
	}
	var part *index.Partition
	if partitionPath != "" {
		man, merr := shard.ReadManifest(partitionPath)
		if merr != nil {
			return nil, "", merr
		}
		if man.Shards != len(urls) {
			return nil, "", fmt.Errorf("-partition records %d shards, -route names %d", man.Shards, len(urls))
		}
		if man.Dim != ds.Dim() {
			return nil, "", fmt.Errorf("-partition has dim %d, relation has %d", man.Dim, ds.Dim())
		}
		part = man.Part
	} else if part, err = buildPartition(ds, len(urls)); err != nil {
		return nil, "", err
	}
	backends := make([]shard.Backend, len(urls))
	followers := 0
	for i, reps := range urls {
		r := shard.NewRemote(reps[0], reps[1:], http.DefaultClient)
		if err := primeRemote(ctx, r, ds.Dim()); err != nil {
			return nil, "", fmt.Errorf("shard %d: %w", i, err)
		}
		backends[i] = r
		followers += len(reps) - 1
	}
	sh, err := shard.New(part, backends)
	if err != nil {
		return nil, "", err
	}
	s, err := serve.NewSharded(e, sh, opts...)
	if err != nil {
		return nil, "", err
	}
	info := fmt.Sprintf("%q (%d tuples, %d input attributes) routing %d remote shards (+%d followers)",
		ds.Name, ds.Len(), ds.Dim(), len(urls), followers)
	return s, info, nil
}

// primeRemote fetches a remote shard's meta with a short retry loop, so a
// router and its shards can boot concurrently.
func primeRemote(ctx context.Context, r *shard.Remote, dim int) error {
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := r.Prime(ctx, dim)
		if err == nil {
			return nil
		}
		if errors.Is(err, core.ErrDimension) || time.Now().After(deadline) || ctx.Err() != nil {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(500 * time.Millisecond):
		}
	}
}
