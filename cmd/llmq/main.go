// Command llmq is the end-to-end tool for the query-driven LLM analytics
// library: it generates synthetic datasets, trains models from query
// workloads executed against the in-memory DBMS, and answers SQL-like
// analytics statements either exactly or through a trained model.
//
// Typical session:
//
//	llmq generate -dataset R1 -n 20000 -dim 2 -o r1.csv
//	llmq train -data r1.csv -a 0.25 -pairs 4000 -o model.json
//	llmq query -data r1.csv -model model.json \
//	    -sql "SELECT APPROX AVG(u) FROM r1 WITHIN 0.1 OF (0.5, 0.5)"
//	llmq query -data r1.csv \
//	    -sql "SELECT REGRESSION(u ON x1, x2) FROM r1 WITHIN 0.1 OF (0.5, 0.5)"
package main

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"llmq/internal/core"
	"llmq/internal/dataset"
	"llmq/internal/engine"
	"llmq/internal/exec"
	"llmq/internal/sqlfront"
	"llmq/internal/synth"
	"llmq/internal/wal"
	"llmq/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "llmq:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		usage(out)
		return errors.New("a subcommand is required")
	}
	switch args[0] {
	case "generate":
		return cmdGenerate(args[1:], out)
	case "train":
		return cmdTrain(args[1:], out)
	case "query":
		return cmdQuery(args[1:], out)
	case "batch":
		return cmdBatch(args[1:], out)
	case "serve":
		return cmdServe(args[1:], out)
	case "help", "-h", "--help":
		usage(out)
		return nil
	default:
		usage(out)
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage(out io.Writer) {
	fmt.Fprint(out, `llmq - query-driven local linear models for in-DBMS analytics

subcommands:
  generate  generate a synthetic dataset (R1 sensor surrogate or R2 Rosenbrock) as CSV
  train     execute a random query workload against the dataset and train an LLM model
  query     answer a SQL-like analytics statement exactly or with a trained model
  batch     answer a file of statements (one per line) in parallel over a worker pool
  serve     expose the relation (and optional model) as the HTTP analytics service
`)
}

func cmdGenerate(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("generate", flag.ContinueOnError)
	kind := fs.String("dataset", "R1", "dataset kind: R1 or R2")
	n := fs.Int("n", 10000, "number of tuples")
	dim := fs.Int("dim", 2, "input dimensionality")
	seed := fs.Int64("seed", 1, "random seed")
	output := fs.String("o", "", "output CSV path (default: stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var cfg synth.Config
	switch strings.ToUpper(*kind) {
	case "R1":
		cfg = synth.R1Config(*n, *dim, *seed)
	case "R2":
		cfg = synth.R2Config(*n, *dim, *seed)
	default:
		return fmt.Errorf("unknown dataset kind %q", *kind)
	}
	pts, err := synth.Generate(cfg)
	if err != nil {
		return err
	}
	ds, err := dataset.FromPoints(strings.ToUpper(*kind), pts.Xs, pts.Us)
	if err != nil {
		return err
	}
	w := out
	if *output != "" {
		f, err := os.Create(*output)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := ds.WriteCSV(w); err != nil {
		return err
	}
	if *output != "" {
		fmt.Fprintf(out, "wrote %d tuples (%d attributes + output) to %s\n", ds.Len(), ds.Dim(), *output)
	}
	return nil
}

// loadExecutor loads a CSV dataset into the in-memory engine and builds a
// grid-indexed executor over it.
func loadExecutor(path string, cellSize float64) (*exec.Executor, *dataset.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	name := strings.TrimSuffix(strings.ToLower(strings.TrimSuffix(path, ".csv")), "/")
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	ds, err := dataset.ReadCSV(name, f)
	if err != nil {
		return nil, nil, err
	}
	cat := engine.NewCatalog()
	tab, err := cat.LoadDataset(name, ds)
	if err != nil {
		return nil, nil, err
	}
	if cellSize <= 0 {
		b, err := ds.Bounds()
		if err != nil {
			return nil, nil, err
		}
		span := 0.0
		for j := range b.InputMax {
			span += b.InputMax[j] - b.InputMin[j]
		}
		cellSize = span / float64(ds.Dim()) / 10
		if cellSize <= 0 {
			cellSize = 1
		}
	}
	e, err := exec.NewExecutorWithGrid(tab, ds.InputNames, ds.OutputName, cellSize)
	if err != nil {
		return nil, nil, err
	}
	return e, ds, nil
}

// capacity carries the bounded-capacity flag values (and which were
// explicitly set) from a subcommand's flag set to applyCapacity.
type capacity struct {
	maxProto         int
	evict            string
	merge            bool
	maxSet, mergeSet bool
}

// any reports whether the user passed any capacity flag at all.
func (cp capacity) any() bool { return cp.maxSet || cp.evict != "" || cp.mergeSet }

// capacityFlags registers the bounded-capacity streaming-training flags
// shared by the train, serve and batch subcommands; call the returned
// function after fs.Parse to collect the values plus set-ness.
func capacityFlags(fs *flag.FlagSet) func() capacity {
	maxProto := fs.Int("max-prototypes", 0, "cap the live prototype count K; 0 = unbounded")
	evict := fs.String("evict", "", "eviction policy under -max-prototypes: windecay (default) or recency")
	merge := fs.Bool("merge", false, "merge evicted prototypes into their nearest survivor instead of discarding them")
	return func() capacity {
		cp := capacity{maxProto: *maxProto, evict: *evict, merge: *merge}
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "max-prototypes":
				cp.maxSet = true
			case "merge":
				cp.mergeSet = true
			}
		})
		return cp
	}
}

// applyCapacity re-caps a loaded model: with a positive cap the
// lowest-scoring prototypes are evicted (or merged) immediately, so a large
// trained model can be shrunk to a serving budget at startup; it also arms
// bounded eviction for any further online training. Flags the user did not
// pass keep the model file's persisted capacity configuration — in
// particular, -evict or -merge alone never removes a persisted cap
// (`-max-prototypes 0` removes it explicitly).
func applyCapacity(m *core.Model, cp capacity) error {
	if !cp.any() {
		return nil
	}
	max, policy, merge, err := resolveCapacity(m.Config(), cp)
	if err != nil {
		return err
	}
	return m.SetCapacity(max, policy, merge)
}

// resolveCapacity turns the flag values into concrete SetCapacity
// arguments against the model's persisted configuration: unset flags keep
// what the model carries, and a nil policy means "keep the current one".
func resolveCapacity(cfg core.Config, cp capacity) (int, core.EvictionPolicy, bool, error) {
	if !cp.maxSet {
		cp.maxProto = cfg.MaxPrototypes
	}
	if cp.maxProto <= 0 && (cp.evict != "" || cp.mergeSet) {
		// -evict/-merge on a model with no cap (persisted or given) would
		// arm nothing: SetCapacity(0, …) means "uncapped". An explicit
		// `-max-prototypes 0` alone still removes a persisted cap.
		return 0, nil, false, errors.New("-evict/-merge need a capacity: pass -max-prototypes or load a model with a persisted cap")
	}
	if !cp.mergeSet {
		cp.merge = cfg.MergeOnEvict
	}
	var policy core.EvictionPolicy
	if cp.evict != "" {
		// An explicit -evict replaces the persisted policy; otherwise nil
		// keeps whatever the model file carries.
		var err error
		if policy, err = core.ParseEvictionPolicy(cp.evict); err != nil {
			return 0, nil, false, err
		}
	}
	return cp.maxProto, policy, cp.merge, nil
}

func cmdTrain(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("train", flag.ContinueOnError)
	data := fs.String("data", "", "input dataset CSV (required)")
	a := fs.Float64("a", 0.25, "quantization coefficient a in (0,1]")
	gamma := fs.Float64("gamma", 0.01, "convergence threshold γ")
	pairs := fs.Int("pairs", 5000, "maximum number of training query/answer pairs")
	thetaMean := fs.Float64("theta", 0, "mean query radius µθ (default: 10% of the average attribute range)")
	seed := fs.Int64("seed", 1, "random seed for the query workload")
	output := fs.String("o", "model.json", "output model path")
	dataDir := fs.String("data-dir", "", "durable model directory: WAL-log every training pair and checkpoint the result, resumable by serve -data-dir")
	walSync := fs.String("wal-sync", "group", "WAL fsync policy under -data-dir: group, always or none")
	snapEvery := fs.Int("snapshot-every", 4096, "training pairs between WAL snapshot rotations under -data-dir")
	url := fs.String("url", "", "ship the computed training pairs to a running `llmq serve` /train endpoint instead of writing a model file")
	getCap := capacityFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataDir == "" && (*walSync != "group" || *snapEvery != 4096) {
		return errors.New("train: -wal-sync/-snapshot-every need -data-dir")
	}
	if *url != "" && (*dataDir != "" || getCap().any()) {
		// The remote server owns its model's durability and capacity; the
		// client only computes and ships the pairs.
		return errors.New("train: -url is remote training; -data-dir/-max-prototypes belong to the server")
	}
	if *data == "" {
		return errors.New("train: -data is required")
	}
	e, ds, err := loadExecutor(*data, 0)
	if err != nil {
		return err
	}
	b, err := ds.Bounds()
	if err != nil {
		return err
	}
	lo, hi, span := b.InputMin[0], b.InputMax[0], 0.0
	for j := range b.InputMax {
		if b.InputMin[j] < lo {
			lo = b.InputMin[j]
		}
		if b.InputMax[j] > hi {
			hi = b.InputMax[j]
		}
		span += b.InputMax[j] - b.InputMin[j]
	}
	span /= float64(ds.Dim())
	theta := *thetaMean
	if theta <= 0 {
		theta = span / 10
	}
	gen, err := workload.NewGenerator(workload.GenConfig{
		Dim:         ds.Dim(),
		CenterLo:    lo,
		CenterHi:    hi,
		ThetaMean:   theta,
		ThetaStdDev: theta / 4,
		Seed:        *seed,
	})
	if err != nil {
		return err
	}
	h, err := workload.NewHarness(e, gen)
	if err != nil {
		return err
	}
	if *url != "" {
		// Remote training: this node plays the engine — it executes the
		// workload to produce exact (query, answer) pairs — and the serving
		// node absorbs them through /train, shedding and retrying under its
		// own admission control.
		pp, err := h.TrainingPairs(*pairs)
		if err != nil {
			return err
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		return remoteTrain(ctx, out, *url, pp)
	}
	cfg := core.DefaultConfig(ds.Dim())
	cfg.ResolutionA = *a
	cfg.Gamma = *gamma
	cfg.Vigilance = *a * (span*sqrtDim(ds.Dim()) + theta)
	if cp := getCap(); cp.maxProto > 0 {
		policy, err := core.ParseEvictionPolicy(cp.evict)
		if err != nil {
			return err
		}
		cfg.MaxPrototypes = cp.maxProto
		cfg.Eviction = policy
		cfg.MergeOnEvict = cp.merge
	} else if cp.evict != "" || cp.mergeSet {
		// Unlike serve/batch — where a bare -evict/-merge rewrites the
		// policy of a model file's persisted cap — train has no persisted
		// cap to modify: a policy with no capacity would silently train an
		// unbounded model.
		return errors.New("train: -evict/-merge require -max-prototypes")
	}
	start := time.Now()
	var (
		m          *core.Model
		res        core.TrainingResult
		trainPairs []core.TrainingPair
	)
	if *dataDir != "" {
		// Durable training: every pair is write-ahead logged before it is
		// applied and the result is checkpointed on Close, so the directory
		// is resumable (serve -data-dir, or another train run) and a crash
		// mid-training loses at most the unsynced tail. An existing
		// directory is recovered first and trained on top — its embedded
		// configuration wins over the flags.
		mode, err := wal.ParseSyncMode(*walSync)
		if err != nil {
			return err
		}
		trainPairs, err = h.TrainingPairs(*pairs)
		if err != nil {
			return err
		}
		d, err := core.Recover(*dataDir, cfg, core.DurableOptions{
			WAL:           wal.Options{Mode: mode},
			SnapshotEvery: *snapEvery,
		})
		if err != nil {
			return err
		}
		if prior := d.Model().Steps(); prior > 0 {
			fmt.Fprintf(out, "recovered %d prior training pairs (K=%d) from %s\n", prior, d.Model().K(), *dataDir)
		}
		res, err = d.TrainBatch(trainPairs)
		if err != nil {
			_ = d.Close()
			return err
		}
		if err := d.Close(); err != nil {
			return err
		}
		m = d.Model()
	} else {
		var err error
		m, res, trainPairs, err = h.TrainModel(cfg, *pairs)
		if err != nil {
			return err
		}
	}
	// The model file appears atomically (temp + fsync + rename): a crash or
	// ENOSPC mid-write leaves the previous file, never a torn JSON prefix a
	// query-processing node would fail to load.
	if err := wal.WriteFileAtomic(*output, m.Save); err != nil {
		return err
	}
	fmt.Fprintf(out, "trained on %d query/answer pairs in %v: K=%d prototypes, converged=%v (Γ=%.4g)\n",
		len(trainPairs), time.Since(start).Round(time.Millisecond), res.K, res.Converged, res.FinalGamma)
	fmt.Fprintf(out, "model written to %s\n", *output)
	return nil
}

func sqrtDim(d int) float64 {
	s := 1.0
	for i := 0; i < 20; i++ {
		s = 0.5 * (s + float64(d)/s)
	}
	return s
}

func cmdQuery(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	data := fs.String("data", "", "dataset CSV backing the relation (required)")
	modelPath := fs.String("model", "", "trained model JSON (required for APPROX statements)")
	sql := fs.String("sql", "", "analytics statement to execute (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" || *sql == "" {
		return errors.New("query: -data and -sql are required")
	}
	stmt, err := sqlfront.Parse(*sql)
	if err != nil {
		return err
	}
	e, ds, err := loadExecutor(*data, 0)
	if err != nil {
		return err
	}
	if len(stmt.Center) != ds.Dim() {
		return fmt.Errorf("query centre has %d coordinates, relation has %d input attributes", len(stmt.Center), ds.Dim())
	}
	var model *core.Model
	if stmt.Approx {
		if *modelPath == "" {
			return errors.New("query: APPROX statements need -model")
		}
		model, err = loadModel(*modelPath, ds.Dim())
		if err != nil {
			return fmt.Errorf("query: %w", err)
		}
	}
	return executeStatement(out, stmt, e, model)
}

// loadModel loads a trained model and validates it against the relation's
// dimensionality up front, so APPROX statements cannot fail one by one with
// per-query dimension errors later.
func loadModel(path string, dim int) (*core.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := core.Load(f)
	if err != nil {
		return nil, err
	}
	if m.K() == 0 {
		return nil, errors.New("the loaded model has no prototypes")
	}
	if m.Config().Dim != dim {
		return nil, fmt.Errorf("model dim %d does not match the relation's %d input attributes",
			m.Config().Dim, dim)
	}
	return m, nil
}

// cmdBatch answers a whole file of analytics statements (one per line; blank
// lines and #-comments are skipped). When every statement is an APPROX AVG,
// the answers come from one Model.PredictBatch call — the model's bounded
// worker pool — otherwise each statement runs on its own pool worker via the
// same execution path as the query subcommand. Output order always matches
// input order.
func cmdBatch(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("batch", flag.ContinueOnError)
	data := fs.String("data", "", "dataset CSV backing the relation (required unless -url)")
	modelPath := fs.String("model", "", "trained model JSON (required for APPROX statements)")
	file := fs.String("file", "", "statement file, one per line (required; '-' reads stdin)")
	url := fs.String("url", "", "ship the statements to a running `llmq serve` instance (e.g. http://localhost:8080) instead of executing locally")
	getCap := capacityFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *url != "" {
		if *data != "" || *modelPath != "" || getCap().any() {
			return errors.New("batch: -url is remote execution; -data/-model/-max-prototypes belong to the server")
		}
		if *file == "" {
			return errors.New("batch: -file is required")
		}
	} else if *data == "" || *file == "" {
		return errors.New("batch: -data and -file are required")
	}
	var src io.Reader = os.Stdin
	if *file != "-" {
		f, err := os.Open(*file)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	var sqls []string
	sc := bufio.NewScanner(src)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sqls = append(sqls, line)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(sqls) == 0 {
		return errors.New("batch: no statements in input")
	}
	if *url != "" {
		// Remote mode: the server parses, admits and executes; the client
		// retries sheds with backoff. Ctrl-C cancels between chunks and
		// mid-retry alike.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		return remoteBatch(ctx, out, *url, sqls)
	}
	stmts := make([]*sqlfront.Statement, len(sqls))
	needModel := false
	allApproxMean := true
	for i, sql := range sqls {
		stmt, err := sqlfront.Parse(sql)
		if err != nil {
			return fmt.Errorf("batch: statement %d: %w", i+1, err)
		}
		stmts[i] = stmt
		if stmt.Approx {
			needModel = true
		}
		if !stmt.Approx || stmt.Kind != sqlfront.StmtMean {
			allApproxMean = false
		}
	}
	e, ds, err := loadExecutor(*data, 0)
	if err != nil {
		return err
	}
	var model *core.Model
	if needModel {
		if *modelPath == "" {
			return errors.New("batch: APPROX statements need -model")
		}
		model, err = loadModel(*modelPath, ds.Dim())
		if err != nil {
			return fmt.Errorf("batch: %w", err)
		}
		if err := applyCapacity(model, getCap()); err != nil {
			return fmt.Errorf("batch: %w", err)
		}
	} else if getCap().any() {
		// No APPROX statement loads a model, so the flags would silently
		// do nothing.
		return errors.New("batch: -max-prototypes/-evict/-merge need APPROX statements (a loaded model)")
	}
	for i, stmt := range stmts {
		if len(stmt.Center) != ds.Dim() {
			return fmt.Errorf("batch: statement %d centre has %d coordinates, relation has %d input attributes",
				i+1, len(stmt.Center), ds.Dim())
		}
	}
	start := time.Now()
	if allApproxMean {
		queries := make([]core.Query, len(stmts))
		for i, stmt := range stmts {
			q, err := core.NewQuery(stmt.Center, stmt.Theta)
			if err != nil {
				return err
			}
			queries[i] = q
		}
		answers, err := model.PredictBatch(queries)
		if err != nil {
			return err
		}
		for i, y := range answers {
			fmt.Fprintf(out, "[%d] approx AVG(%s) = %.6g\n", i+1, stmts[i].Output, y)
		}
	} else {
		// An interrupt (Ctrl-C) cancels the pool: already-claimed statements
		// finish and print, the rest are reported as skipped.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		bufs := make([]bytes.Buffer, len(stmts))
		errs := make([]error, len(stmts))
		ran := make([]bool, len(stmts))
		if err := exec.ForEachParallelCtx(ctx, len(stmts), func(i int) {
			errs[i] = executeStatement(&bufs[i], stmts[i], e, model)
			ran[i] = true
		}); err != nil {
			fmt.Fprintf(out, "batch interrupted: %v\n", err)
			for i := range errs {
				if !ran[i] {
					errs[i] = fmt.Errorf("skipped: %w", err)
				}
			}
		}
		for i := range stmts {
			if errs[i] != nil {
				fmt.Fprintf(out, "[%d] error: %v\n", i+1, errs[i])
				continue
			}
			fmt.Fprintf(out, "[%d] %s", i+1, bufs[i].String())
		}
	}
	fmt.Fprintf(out, "answered %d statements in %v\n", len(stmts), time.Since(start).Round(time.Microsecond))
	return nil
}

func executeStatement(out io.Writer, stmt *sqlfront.Statement, e *exec.Executor, model *core.Model) error {
	rq := exec.RadiusQuery{Center: stmt.Center, Theta: stmt.Theta, P: stmt.Norm}
	switch stmt.Kind {
	case sqlfront.StmtMean:
		if stmt.Approx {
			q, err := core.NewQuery(stmt.Center, stmt.Theta)
			if err != nil {
				return err
			}
			start := time.Now()
			yhat, err := model.PredictMean(q)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "approx AVG(%s) = %.6g   [model, %v, no data access]\n",
				stmt.Output, yhat, time.Since(start).Round(time.Microsecond))
			return nil
		}
		res, err := e.Mean(rq)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "AVG(%s) = %.6g   [exact over %d tuples, %v]\n", stmt.Output, res.Mean, res.Count, res.Elapsed.Round(time.Microsecond))
		return nil
	case sqlfront.StmtRegression:
		if stmt.Approx {
			q, err := core.NewQuery(stmt.Center, stmt.Theta)
			if err != nil {
				return err
			}
			start := time.Now()
			locals, err := model.Regression(q)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "approx REGRESSION(%s): %d local linear model(s) [model, %v, no data access]\n",
				stmt.Output, len(locals), time.Since(start).Round(time.Microsecond))
			for i, lm := range locals {
				fmt.Fprintf(out, "  S[%d] (weight %.3f, around %s, θ=%.3g): %s\n", i, lm.Weight, lm.Center, lm.Theta, lm)
			}
			return nil
		}
		res, err := e.Regression(rq)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "REGRESSION(%s) over %d tuples [%v]: intercept=%.6g slope=%v  (FVU=%.4g, R²=%.4g)\n",
			stmt.Output, res.Count, res.Elapsed.Round(time.Microsecond), res.Intercept, res.Slope, res.FVU, res.CoD)
		return nil
	case sqlfront.StmtValue:
		if len(stmt.At) != len(stmt.Center) {
			return fmt.Errorf("AT point has %d coordinates, centre has %d", len(stmt.At), len(stmt.Center))
		}
		if stmt.Approx {
			q, err := core.NewQuery(stmt.Center, stmt.Theta)
			if err != nil {
				return err
			}
			uhat, err := model.PredictValue(q, stmt.At)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "approx VALUE(%s) at %v = %.6g   [model, no data access]\n", stmt.Output, stmt.At, uhat)
			return nil
		}
		res, err := e.Regression(rq)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "VALUE(%s) at %v ≈ %.6g   [exact local regression over %d tuples]\n",
			stmt.Output, stmt.At, res.Predict(stmt.At), res.Count)
		return nil
	default:
		return fmt.Errorf("unsupported statement kind %v", stmt.Kind)
	}
}
