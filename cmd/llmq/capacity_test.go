package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"llmq/internal/core"
)

// TestTrainWithCapacityFlags trains a bounded model from the CLI and checks
// the cap held and was persisted in the model file.
func TestTrainWithCapacityFlags(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "r1.csv")
	model := filepath.Join(dir, "model.json")
	var out bytes.Buffer
	if err := run([]string{"generate", "-dataset", "R1", "-n", "4000", "-dim", "2", "-seed", "4", "-o", data}, &out); err != nil {
		t.Fatalf("generate: %v", err)
	}
	if err := run([]string{"train", "-data", data, "-a", "0.05", "-pairs", "2000",
		"-max-prototypes", "40", "-evict", "recency", "-merge", "-o", model}, &out); err != nil {
		t.Fatalf("train: %v", err)
	}
	raw, err := os.ReadFile(model)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		MaxPrototypes int               `json:"max_prototypes"`
		Eviction      string            `json:"eviction"`
		MergeOnEvict  bool              `json:"merge_on_evict"`
		LLMs          []json.RawMessage `json:"llms"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.MaxPrototypes != 40 || doc.Eviction != "recency" || !doc.MergeOnEvict {
		t.Fatalf("capacity config not persisted: %+v", doc)
	}
	if len(doc.LLMs) == 0 || len(doc.LLMs) > 40 {
		t.Fatalf("trained model has %d prototypes, want (0, 40]", len(doc.LLMs))
	}
	if err := run([]string{"train", "-data", data, "-pairs", "50", "-max-prototypes", "10", "-evict", "bogus", "-o", model}, &out); err == nil {
		t.Fatal("unknown -evict policy should fail")
	}
	// A policy without a capacity would silently train unbounded: reject.
	if err := run([]string{"train", "-data", data, "-pairs", "50", "-evict", "recency", "-o", model}, &out); err == nil {
		t.Fatal("train -evict without -max-prototypes should fail")
	}
	if err := run([]string{"train", "-data", data, "-pairs", "50", "-merge", "-o", model}, &out); err == nil {
		t.Fatal("train -merge without -max-prototypes should fail")
	}
}

// TestServeCapacityRecap re-caps a loaded model at serve startup: the
// served model must shrink to the requested budget.
func TestServeCapacityRecap(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "r1.csv")
	model := filepath.Join(dir, "model.json")
	var out bytes.Buffer
	if err := run([]string{"generate", "-dataset", "R1", "-n", "4000", "-dim", "2", "-seed", "6", "-o", data}, &out); err != nil {
		t.Fatalf("generate: %v", err)
	}
	if err := run([]string{"train", "-data", data, "-a", "0.05", "-pairs", "2000", "-o", model}, &out); err != nil {
		t.Fatalf("train: %v", err)
	}
	_, info, err := buildServer(data, model, 0, capacity{maxProto: 25, maxSet: true, evict: "windecay"})
	if err != nil {
		t.Fatalf("buildServer with recap: %v", err)
	}
	m := regexp.MustCompile(`K=(\d+)`).FindStringSubmatch(info)
	if m == nil {
		t.Fatalf("server info %q should report the model size", info)
	}
	if k, _ := strconv.Atoi(m[1]); k == 0 || k > 25 {
		t.Fatalf("served model has K=%d after re-capping to 25 (info %q)", k, info)
	}
	if _, _, err := buildServer(data, model, 0, capacity{maxProto: 10, maxSet: true, evict: "bogus"}); err == nil {
		t.Fatal("unknown eviction policy should fail server construction")
	}
	// Capacity flags without a model would silently arm nothing: reject.
	if _, _, err := buildServer(data, "", 0, capacity{maxProto: 10, maxSet: true}); err == nil {
		t.Fatal("capacity flags without -model should fail server construction")
	}
	stmts := filepath.Join(dir, "s.txt")
	if err := os.WriteFile(stmts, []byte("SELECT AVG(u) FROM r1 WITHIN 0.1 OF (0.5, 0.5)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out2 bytes.Buffer
	if err := run([]string{"batch", "-data", data, "-file", stmts, "-max-prototypes", "10"}, &out2); err == nil {
		t.Fatal("batch capacity flags without APPROX statements should fail")
	}
}

// TestApplyCapacityPreservesPersistedCap: -evict or -merge alone must
// switch the policy of a model file's persisted cap, never remove the cap
// (and -evict alone must not clobber a persisted merge setting).
func TestApplyCapacityPreservesPersistedCap(t *testing.T) {
	cfg := core.DefaultConfig(2)
	cfg.MaxPrototypes = 77
	cfg.Eviction = core.WinDecay{}
	cfg.MergeOnEvict = true
	m, err := core.NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := applyCapacity(m, capacity{evict: "recency"}); err != nil {
		t.Fatal(err)
	}
	got := m.Config()
	if got.MaxPrototypes != 77 {
		t.Fatalf("-evict alone removed the persisted cap: MaxPrototypes=%d", got.MaxPrototypes)
	}
	if _, ok := got.Eviction.(core.Recency); !ok {
		t.Fatalf("-evict recency not applied: %#v", got.Eviction)
	}
	if !got.MergeOnEvict {
		t.Fatal("-evict alone clobbered the persisted merge setting")
	}
	// An explicit -max-prototypes 0 does remove the cap.
	if err := applyCapacity(m, capacity{maxProto: 0, maxSet: true}); err != nil {
		t.Fatal(err)
	}
	if got := m.Config(); got.MaxPrototypes != 0 {
		t.Fatalf("explicit -max-prototypes 0 should uncap, got %d", got.MaxPrototypes)
	}
	// No capacity flags at all: a pure no-op.
	if err := applyCapacity(m, capacity{}); err != nil {
		t.Fatal(err)
	}
	// -evict/-merge on a model that now has no cap would arm nothing.
	if err := applyCapacity(m, capacity{evict: "recency"}); err == nil {
		t.Fatal("-evict on an uncapped model should fail")
	}
	if err := applyCapacity(m, capacity{merge: true, mergeSet: true}); err == nil {
		t.Fatal("-merge on an uncapped model should fail")
	}
}
