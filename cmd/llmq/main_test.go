package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestUsageAndUnknownSubcommand(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("empty args should error")
	}
	if err := run([]string{"bogus"}, &out); err == nil {
		t.Error("unknown subcommand should error")
	}
	if err := run([]string{"help"}, &out); err != nil {
		t.Errorf("help: %v", err)
	}
	if !strings.Contains(out.String(), "subcommands") {
		t.Error("usage text missing")
	}
}

func TestGenerateTrainQueryEndToEnd(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "r1.csv")
	model := filepath.Join(dir, "model.json")
	var out bytes.Buffer

	// Generate a small R1 dataset.
	if err := run([]string{"generate", "-dataset", "R1", "-n", "4000", "-dim", "2", "-seed", "3", "-o", data}, &out); err != nil {
		t.Fatalf("generate: %v", err)
	}
	if _, err := os.Stat(data); err != nil {
		t.Fatalf("dataset not written: %v", err)
	}

	// Train a model on a modest workload.
	out.Reset()
	if err := run([]string{"train", "-data", data, "-a", "0.2", "-pairs", "1500", "-o", model}, &out); err != nil {
		t.Fatalf("train: %v", err)
	}
	if !strings.Contains(out.String(), "prototypes") {
		t.Errorf("train output: %q", out.String())
	}
	if _, err := os.Stat(model); err != nil {
		t.Fatalf("model not written: %v", err)
	}

	// Exact mean query.
	out.Reset()
	if err := run([]string{"query", "-data", data, "-sql", "SELECT AVG(u) FROM r1 WITHIN 0.2 OF (0.5, 0.5)"}, &out); err != nil {
		t.Fatalf("exact query: %v", err)
	}
	if !strings.Contains(out.String(), "exact over") {
		t.Errorf("exact query output: %q", out.String())
	}

	// Approximate mean query through the model.
	out.Reset()
	if err := run([]string{"query", "-data", data, "-model", model, "-sql", "SELECT APPROX AVG(u) FROM r1 WITHIN 0.2 OF (0.5, 0.5)"}, &out); err != nil {
		t.Fatalf("approx query: %v", err)
	}
	if !strings.Contains(out.String(), "no data access") {
		t.Errorf("approx query output: %q", out.String())
	}

	// Exact and approximate regression queries.
	out.Reset()
	if err := run([]string{"query", "-data", data, "-sql", "SELECT REGRESSION(u ON x1, x2) FROM r1 WITHIN 0.2 OF (0.5, 0.5)"}, &out); err != nil {
		t.Fatalf("exact regression: %v", err)
	}
	if !strings.Contains(out.String(), "intercept=") {
		t.Errorf("regression output: %q", out.String())
	}
	out.Reset()
	if err := run([]string{"query", "-data", data, "-model", model, "-sql", "SELECT APPROX REGRESSION(u) FROM r1 WITHIN 0.2 OF (0.5, 0.5)"}, &out); err != nil {
		t.Fatalf("approx regression: %v", err)
	}
	if !strings.Contains(out.String(), "local linear model") {
		t.Errorf("approx regression output: %q", out.String())
	}

	// Data-value prediction, both paths.
	out.Reset()
	if err := run([]string{"query", "-data", data, "-model", model, "-sql", "SELECT APPROX VALUE(u) FROM r1 AT (0.5, 0.5) WITHIN 0.2 OF (0.5, 0.5)"}, &out); err != nil {
		t.Fatalf("approx value: %v", err)
	}
	out.Reset()
	if err := run([]string{"query", "-data", data, "-sql", "SELECT VALUE(u) FROM r1 AT (0.5, 0.5) WITHIN 0.2 OF (0.5, 0.5)"}, &out); err != nil {
		t.Fatalf("exact value: %v", err)
	}
}

func TestQueryErrors(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "r1.csv")
	var out bytes.Buffer
	if err := run([]string{"generate", "-n", "500", "-dim", "2", "-o", data}, &out); err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{"query", "-sql", "SELECT AVG(u) FROM t WITHIN 1 OF (0, 0)"},                      // missing data
		{"query", "-data", data},                                                          // missing sql
		{"query", "-data", data, "-sql", "NOT SQL"},                                       // parse error
		{"query", "-data", data, "-sql", "SELECT APPROX AVG(u) FROM t WITHIN 1 OF (0,0)"}, // approx without model
		{"query", "-data", data, "-sql", "SELECT AVG(u) FROM t WITHIN 1 OF (0)"},          // wrong centre dim
		{"train"},                       // missing data
		{"train", "-data", "/nope.csv"}, // unreadable data
		{"generate", "-dataset", "XX"},  // unknown dataset
	}
	for _, args := range cases {
		if err := run(args, &out); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestGenerateToStdout(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"generate", "-dataset", "R2", "-n", "50", "-dim", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 51 { // header + 50 rows
		t.Errorf("stdout CSV has %d lines", len(lines))
	}
}

func TestSqrtDim(t *testing.T) {
	if got := sqrtDim(4); got < 1.999 || got > 2.001 {
		t.Errorf("sqrtDim(4) = %v", got)
	}
}
