package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"llmq/internal/core"
	"llmq/internal/resilience"
	"llmq/internal/serve"
)

// Remote client mode: `llmq batch -url` and `llmq train -url` speak to a
// running `llmq serve` instance instead of loading the relation locally.
// Both ride resilience.Do, so a server that sheds under overload (429 with
// Retry-After, 503 during brownout or read-only) is retried with jittered
// exponential backoff that honors the server's hint — the client half of
// the admission-control contract.

// clientBackoff is the retry policy of the remote subcommands: up to 6
// attempts over roughly 10 seconds of worst-case waiting.
var clientBackoff = resilience.Backoff{
	Base:  200 * time.Millisecond,
	Max:   4 * time.Second,
	Tries: 6,
}

// chunkLimit is the largest request the client sends at once; it matches
// the server's per-request caps (maxBatchStatements / maxTrainPairs), so a
// big workload ships as several admission-sized requests instead of one
// oversized POST the server must reject.
const chunkLimit = 4096

// postJSON POSTs body as JSON to url with retries and returns the response
// on a 200; any terminal non-200 status is turned into an error carrying
// the server's error body. The caller owns closing the response body.
func postJSON(ctx context.Context, url string, body any) (*http.Response, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	newReq := func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	}
	resp, err := resilience.Do(ctx, http.DefaultClient, newReq, clientBackoff)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var eb struct {
			Error string `json:"error"`
		}
		msg := resp.Status
		if json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&eb) == nil && eb.Error != "" {
			msg = fmt.Sprintf("%s: %s", resp.Status, eb.Error)
		}
		resp.Body.Close()
		return nil, fmt.Errorf("%s answered %s", url, msg)
	}
	return resp, nil
}

// postRetry POSTs body as JSON to url with retries and decodes a 200
// response into result.
func postRetry(ctx context.Context, url string, body, result any) error {
	resp, err := postJSON(ctx, url, body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(result)
}

// joinURL glues a base server URL and an endpoint path.
func joinURL(base, path string) string {
	return strings.TrimRight(base, "/") + path
}

// remoteBatch ships a statement sheet to a running server's /query/batch in
// admission-sized chunks and prints the positional answers in input order.
// The server streams NDJSON, and the client consumes it incrementally: each
// answer is printed the moment its frame arrives, while later statements in
// the sheet are still executing. Retries cover only the pre-stream phase (a
// 429/503 shed before the server committed to the sheet); once frames flow,
// a broken stream is terminal — re-sending could re-execute statements the
// server already answered.
func remoteBatch(ctx context.Context, out io.Writer, base string, sqls []string) error {
	start := time.Now()
	n := 0
	for len(sqls) > 0 {
		chunk := sqls
		if len(chunk) > chunkLimit {
			chunk = chunk[:chunkLimit]
		}
		sqls = sqls[len(chunk):]
		resp, err := postJSON(ctx, joinURL(base, "/query/batch"), serve.BatchRequest{SQL: chunk})
		if err != nil {
			return err
		}
		trailer, err := serve.ReadBatchStream(resp.Body, func(f serve.BatchFrame) error {
			n++
			printBatchFrame(out, n, f)
			return nil
		})
		resp.Body.Close()
		if err != nil {
			return err
		}
		if trailer.Results != len(chunk) {
			return fmt.Errorf("server answered %d results for %d statements", trailer.Results, len(chunk))
		}
	}
	fmt.Fprintf(out, "answered %d statements in %v\n", n, time.Since(start).Round(time.Microsecond))
	return nil
}

// printBatchFrame renders one positional /query/batch answer the way the
// local batch mode prints its statements.
func printBatchFrame(out io.Writer, n int, f serve.BatchFrame) {
	if f.Error != "" {
		fmt.Fprintf(out, "[%d] error: %s\n", n, f.Error)
		return
	}
	r := f.QueryResponse
	mode := "exact"
	if r.Approx {
		mode = "model"
	}
	if r.Degraded {
		mode = "model, degraded under overload"
	}
	switch {
	case r.Mean != nil:
		fmt.Fprintf(out, "[%d] AVG = %.6g   [%s]\n", n, *r.Mean, mode)
	case r.Value != nil:
		fmt.Fprintf(out, "[%d] VALUE = %.6g   [%s]\n", n, *r.Value, mode)
	case len(r.Models) > 0 && r.R2 != nil:
		fmt.Fprintf(out, "[%d] REGRESSION: %d local linear model(s), R² = %.4g   [%s]\n", n, len(r.Models), *r.R2, mode)
	case len(r.Models) > 0:
		fmt.Fprintf(out, "[%d] REGRESSION: %d local linear model(s)   [%s]\n", n, len(r.Models), mode)
	default:
		fmt.Fprintf(out, "[%d] %s answered   [%s]\n", n, r.Kind, mode)
	}
}

// remoteTrain ships training pairs to a running server's /train in
// admission-sized chunks: the local engine node computes the exact answers,
// the serving node absorbs them into its (durable) model. Chunks are sent
// strictly in order — the server applies each batch under its writer lock,
// so the stream arrives in the same order local training would apply it.
func remoteTrain(ctx context.Context, out io.Writer, base string, pairs []core.TrainingPair) error {
	start := time.Now()
	sent := 0
	var last serve.TrainResponse
	for len(pairs) > 0 {
		chunk := pairs
		if len(chunk) > chunkLimit {
			chunk = chunk[:chunkLimit]
		}
		pairs = pairs[len(chunk):]
		req := serve.TrainRequest{Pairs: make([]serve.TrainPair, len(chunk))}
		for i, p := range chunk {
			req.Pairs[i] = serve.TrainPair{Center: p.Query.Center, Theta: p.Query.Theta, Answer: p.Answer}
		}
		if err := postRetry(ctx, joinURL(base, "/train"), req, &last); err != nil {
			return fmt.Errorf("after %d pairs: %w", sent, err)
		}
		sent += len(chunk)
	}
	if sent == 0 {
		return errors.New("no training pairs to send")
	}
	durability := "volatile"
	if last.Durable {
		durability = "WAL-logged"
	}
	fmt.Fprintf(out, "shipped %d training pairs in %v: server at K=%d prototypes, %d steps, converged=%v (%s)\n",
		sent, time.Since(start).Round(time.Millisecond), last.Prototypes, last.Steps, last.Converged, durability)
	return nil
}
