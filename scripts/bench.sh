#!/usr/bin/env sh
# bench.sh — run the serving-hot-path benchmarks and record ns/op as JSON,
# or diff two recorded runs.
#
# Usage:
#   scripts/bench.sh [index]
#       Runs the benchmarks and writes BENCH_<index>.json (default
#       BENCH_1.json) in the repository root: one entry per benchmark with
#       its ns/op, plus a header naming the run environment — GOMAXPROCS,
#       the git commit and the Go version — so a compare can say what it is
#       comparing. Successive PRs bump the index to build a performance
#       trajectory.
#
#   scripts/bench.sh compare NEW.json OLD.json [--fail-over PCT [REGEX]]
#       Prints a per-benchmark delta table between two recorded runs:
#       benchmarks present in both files are joined by name and reported as
#       old → new with the speedup (old/new; > 1 means NEW is faster).
#       Benchmarks present in only one file are listed separately, so a
#       renamed or newly added benchmark is visible rather than silently
#       dropped. With --fail-over, the compare becomes a regression gate:
#       it exits non-zero when any benchmark whose name matches REGEX
#       (default: every joined benchmark) is more than PCT percent slower
#       in NEW than in OLD, OR is present in NEW but missing from OLD — a
#       gated benchmark with no baseline has dodged the gate (typically a
#       rename), which must fail loudly, not silently pass. CI runs this
#       against the latest committed BENCH_n.json with a generous threshold
#       — smoke benchtimes are noisy, so the gate only catches
#       order-of-magnitude regressions.
set -eu

cd "$(dirname "$0")/.."

if [ "${1:-}" = "compare" ]; then
    new="${2:?usage: scripts/bench.sh compare NEW.json OLD.json [--fail-over PCT [REGEX]]}"
    old="${3:?usage: scripts/bench.sh compare NEW.json OLD.json [--fail-over PCT [REGEX]]}"
    failover=""
    failre="."
    if [ "${4:-}" = "--fail-over" ]; then
        failover="${5:?--fail-over needs a percentage}"
        failre="${6:-.}"
    fi
    if [ "$new" = "$old" ]; then
        echo "compare: $new and $old are the same file"
        exit 0
    fi
    awk -v newfile="$new" -v oldfile="$old" -v failover="$failover" -v failre="$failre" '
    function trim(s) { gsub(/^[ \t]+|[ \t,]+$/, "", s); return s }
    # Each benchmark entry line looks like:
    #   {"name": "Benchmark.../sub", "ns_per_op": 123.4},
    /"name"/ {
        line = $0
        sub(/^.*"name":[ \t]*"/, "", line); name = line; sub(/".*$/, "", name)
        line = $0
        sub(/^.*"ns_per_op":[ \t]*/, "", line); ns = trim(line); sub(/[^0-9.eE+-].*$/, "", ns)
        if (FILENAME == oldfile) { oldns[name] = ns; oldseen[name] = 1 }
        else { newns[name] = ns; newseen[name] = 1; order[++n] = name }
    }
    END {
        printf "%-64s %12s %12s %9s\n", "benchmark", "old ns/op", "new ns/op", "speedup"
        nfail = 0
        for (i = 1; i <= n; i++) {
            name = order[i]
            if (!(name in oldseen)) continue
            s = (newns[name] > 0) ? oldns[name] / newns[name] : 0
            printf "%-64s %12.5g %12.5g %8.2fx\n", name, oldns[name], newns[name], s
            if (failover != "" && name ~ failre && oldns[name] > 0) {
                pct = (newns[name] / oldns[name] - 1) * 100
                if (pct > failover + 0) fails[++nfail] = sprintf("%s regressed %.0f%% (limit %s%%)", name, pct, failover)
            }
        }
        for (i = 1; i <= n; i++) {
            name = order[i]
            if (!(name in oldseen)) {
                printf "%-64s %12s %12.5g   (new)\n", name, "-", newns[name]
                # A gated benchmark with no baseline dodges the regression
                # check entirely (usually a rename): fail loudly instead of
                # letting the gate pass vacuously.
                if (failover != "" && name ~ failre) {
                    fails[++nfail] = sprintf("%s matches the gate but has no baseline in %s (renamed?)", name, oldfile)
                }
            }
        }
        for (name in oldseen) {
            if (!(name in newseen)) {
                printf "%-64s %12.5g %12s   (gone)\n", name, oldns[name], "-"
                # The other half of a rename: a gated baseline benchmark
                # that vanished from the current run is no longer being
                # measured at all — fail rather than gate vacuously.
                if (failover != "" && name ~ failre) {
                    fails[++nfail] = sprintf("%s matches the gate but vanished from %s (renamed?)", name, newfile)
                }
            }
        }
        if (nfail > 0) {
            printf "\nFAIL: %d benchmark(s) past the --fail-over %s%% gate:\n", nfail, failover
            for (i = 1; i <= nfail; i++) printf "  %s\n", fails[i]
            exit 1
        }
    }' "$old" "$new" || {
        # awk exits non-zero for the gate (and for I/O errors, e.g. a
        # truncated pipe); only claim a gate failure when one was requested.
        [ -n "$failover" ] && echo "compare: regression gate failed ($new vs $old)" >&2
        exit 1
    }
    exit 0
fi

out="BENCH_${1:-1}.json"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'BenchmarkWinnerSearch' -benchtime "${WINNER_BENCHTIME:-2000x}" \
    ./internal/core/ >>"$tmp"
go test -run '^$' -bench 'BenchmarkOverlapSet|BenchmarkPredictMeanScaling' \
    -benchtime "${OVERLAP_BENCHTIME:-500x}" ./internal/core/ >>"$tmp"
# BenchmarkReadDuringTraining also matches its Scaled (K=10k) companion.
go test -run '^$' -bench 'BenchmarkReadDuringTraining' \
    -benchtime "${READ_BENCHTIME:-2000x}" ./internal/core/ >>"$tmp"
go test -run '^$' -bench 'BenchmarkObservePublish|BenchmarkTrainThroughput' \
    -benchtime "${PUBLISH_BENCHTIME:-2000x}" ./internal/core/ >>"$tmp"
go test -run '^$' -bench 'BenchmarkEpochRebuild' \
    -benchtime "${REBUILD_BENCHTIME:-50x}" ./internal/core/ >>"$tmp"
go test -run '^$' -bench 'BenchmarkStreamingEviction' \
    -benchtime "${EVICT_BENCHTIME:-500x}" ./internal/core/ >>"$tmp"
go test -run '^$' -bench 'BenchmarkWALAppend' \
    -benchtime "${WAL_BENCHTIME:-2000x}" ./internal/core/ >>"$tmp"
# Each recovery op replays the whole multi-thousand-pair tail, so a handful
# of iterations is already milliseconds of measured work per op.
go test -run '^$' -bench 'BenchmarkRecovery' \
    -benchtime "${RECOVER_BENCHTIME:-20x}" ./internal/core/ >>"$tmp"
go test -run '^$' -bench 'BenchmarkPredictBatch|BenchmarkServeThroughput' \
    -benchtime "${BATCH_BENCHTIME:-100x}" . >>"$tmp"
# Overload cost model of the admission layer: exact sheets at 1x/4x/10x the
# query capacity. At 4x/10x almost every sheet is refused, so those ns/op
# measure the refusal path (cheap by design) — the gate watches load=1x,
# where ns/op is the admitted service time.
go test -run '^$' -bench 'BenchmarkServeOverload' \
    -benchtime "${SERVE_BENCHTIME:-100x}" . >>"$tmp"
# Micro-batcher: closed-loop hot-statement coalescing (batch=off vs
# batch=on), plus the open-loop headline — arrivals at 2x the probed
# unbatched capacity, where batching must move shed/req toward 0 and keep
# p99 near window + one evaluation. The p50-ns/p99-ns/shed-per-req metrics
# these benchmarks report are recorded alongside ns/op (see the generator
# below), so BENCH_<n>.json carries the latency/shed numbers, not just
# throughput.
go test -run '^$' -bench 'BenchmarkServeBatching' \
    -benchtime "${BATCHING_BENCHTIME:-100x}" . >>"$tmp"
# Replication: ns/op of the lag benchmark is the per-pair ship+apply cost
# through the WAL long-poll (train on the primary → chunk over HTTP → mirror
# append → live apply on the follower); the bootstrap benchmark is the cold
# follower start (snapshot fetch + load + catch-up) at two primary sizes.
go test -run '^$' -bench 'BenchmarkReplicationLag' \
    -benchtime "${REPL_BENCHTIME:-2000x}" ./internal/replica/ >>"$tmp"
go test -run '^$' -bench 'BenchmarkReplicationBootstrap' \
    -benchtime "${BOOTSTRAP_BENCHTIME:-20x}" ./internal/replica/ >>"$tmp"
# Shard scaling ladder: partitioned train throughput (pairs/s per batch op)
# and concurrent read QPS at 1/2/4/8 shards. On a multi-core runner the
# shards=4 rows should sit near 4x the shards=1 rows; the gate watches the
# shards=4 entries so a routing-layer regression can't hide in the ladder.
go test -run '^$' -bench 'BenchmarkSharded' \
    -benchtime "${SHARD_BENCHTIME:-50x}" ./internal/shard/ >>"$tmp"


awk -v gmp="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)" \
    -v commit="$(git describe --always --dirty 2>/dev/null || echo unknown)" \
    -v gover="$(go env GOVERSION 2>/dev/null || echo unknown)" '
BEGIN {
    print "{"
    printf "  \"gomaxprocs\": %d,\n", gmp
    printf "  \"commit\": \"%s\",\n", commit
    printf "  \"go\": \"%s\",\n", gover
    print "  \"benchmarks\": ["; n = 0
}
/^Benchmark/ {
    name = $1
    # The testing package appends "-GOMAXPROCS" to every benchmark name when
    # GOMAXPROCS != 1. Strip it so records from different machines (the 1-core
    # container vs a multi-core CI runner) join by name in compare — without
    # this the --fail-over gate would silently compare nothing.
    sub(/-[0-9]+$/, "", name)
    # Collect every "value unit" pair on the line: ns/op becomes the leading
    # ns_per_op field (compare joins on it), and any further metric a
    # benchmark reported via ReportMetric (p99-ns, shed/req, B/op, ...) is
    # recorded next to it with the unit sanitized into a JSON key. compare
    # keys off ns_per_op only, so extra fields never break the gate.
    ns = ""; extra = ""
    for (i = 2; i <= NF - 1; i++) {
        unit = $(i + 1)
        if ($i !~ /^[0-9.eE+-]+$/ || unit !~ /^[a-zA-Z]/) continue
        if (unit == "ns/op") { ns = $i; continue }
        key = unit
        gsub(/[^a-zA-Z0-9_]/, "_", key)
        extra = extra sprintf(", \"%s\": %s", key, $i)
    }
    if (ns != "") {
        if (n++) printf ",\n"
        printf "    {\"name\": \"%s\", \"ns_per_op\": %s%s}", name, ns, extra
    }
}
END { print ""; print "  ]"; print "}" }
' "$tmp" >"$out"

echo "wrote $out:"
cat "$out"
