#!/usr/bin/env sh
# bench.sh — run the serving-hot-path benchmarks and record ns/op as JSON.
#
# Usage: scripts/bench.sh [index]
#
# Writes BENCH_<index>.json (default BENCH_1.json) in the repository root:
# one entry per benchmark with its ns/op, plus the GOMAXPROCS the run saw.
# Successive PRs bump the index to build a performance trajectory.
set -eu

cd "$(dirname "$0")/.."
out="BENCH_${1:-1}.json"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'BenchmarkWinnerSearch' -benchtime "${WINNER_BENCHTIME:-2000x}" \
    ./internal/core/ >>"$tmp"
go test -run '^$' -bench 'BenchmarkOverlapSet|BenchmarkPredictMeanScaling' \
    -benchtime "${OVERLAP_BENCHTIME:-500x}" ./internal/core/ >>"$tmp"
go test -run '^$' -bench 'BenchmarkReadDuringTraining' \
    -benchtime "${READ_BENCHTIME:-2000x}" ./internal/core/ >>"$tmp"
go test -run '^$' -bench 'BenchmarkPredictBatch|BenchmarkServeThroughput' \
    -benchtime "${BATCH_BENCHTIME:-100x}" . >>"$tmp"


awk -v gmp="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)" '
BEGIN { print "{"; printf "  \"gomaxprocs\": %d,\n", gmp; print "  \"benchmarks\": ["; n = 0 }
/^Benchmark/ {
    name = $1
    for (i = 2; i <= NF - 1; i++) {
        if ($(i + 1) == "ns/op") {
            if (n++) printf ",\n"
            printf "    {\"name\": \"%s\", \"ns_per_op\": %s}", name, $i
        }
    }
}
END { print ""; print "  ]"; print "}" }
' "$tmp" >"$out"

echo "wrote $out:"
cat "$out"
