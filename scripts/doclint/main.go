// Command doclint enforces doc comments on the packages whose internals the
// architecture guide documents: every listed package must carry a package
// doc comment, and every exported top-level declaration (functions, methods
// on exported types, types, and const/var groups) must be documented. It is
// the CI doc-comment gate — a dependency-free stand-in for revive's
// exported rule — so the package docs referenced by docs/ARCHITECTURE.md
// cannot silently rot.
//
// Usage:
//
//	go run ./scripts/doclint internal/core internal/index internal/vector
//
// Exits non-zero listing every undocumented exported declaration.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doclint PKGDIR...")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		bad += lintDir(dir)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d undocumented exported declaration(s)\n", bad)
		os.Exit(1)
	}
}

// lintDir parses one package directory (tests excluded) and reports every
// exported declaration without a doc comment. Returns the violation count.
func lintDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: %s: %v\n", dir, err)
		return 1
	}
	bad := 0
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			fmt.Printf("%s: package %s has no package doc comment\n", dir, pkg.Name)
			bad++
		}
		for name, f := range pkg.Files {
			bad += lintFile(fset, filepath.Base(name), f)
		}
	}
	return bad
}

func lintFile(fset *token.FileSet, name string, f *ast.File) int {
	bad := 0
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		fmt.Printf("%s:%d: exported %s is undocumented\n", name, p.Line, what)
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			// Methods count when their receiver's base type is exported.
			if d.Recv != nil && !exportedReceiver(d.Recv) {
				continue
			}
			report(d.Pos(), "function/method "+d.Name.Name)
			bad++
		case *ast.GenDecl:
			// A doc comment on the group covers every spec inside it (the
			// idiomatic style for error variables and constant blocks);
			// otherwise each exported spec needs its own.
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), "type "+s.Name.Name)
						bad++
					}
				case *ast.ValueSpec:
					if d.Doc != nil || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							report(s.Pos(), "const/var "+n.Name)
							bad++
						}
					}
				}
			}
		}
	}
	return bad
}

// exportedReceiver reports whether a method receiver names an exported type.
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr: // generic receiver
			t = v.X
		case *ast.Ident:
			return v.IsExported()
		default:
			return false
		}
	}
}
