package llmq_test

import (
	"io"
	"testing"

	"llmq/internal/core"
	"llmq/internal/exec"
	"llmq/internal/experiments"
	"llmq/internal/plr"
	"llmq/internal/workload"
)

// benchScale keeps the per-figure benchmarks fast enough to run as part of
// `go test -bench=.` while still exercising the full pipeline of every
// experiment (dataset generation, exact execution, training, prediction,
// baselines). The EXPERIMENTS.md numbers come from the `full` scale via
// cmd/llmq-experiments.
var benchScale = experiments.Scale{
	Name:        "bench",
	DatasetN:    3000,
	TrainPairs:  1500,
	TestQueries: 150,
	Q2Queries:   16,
	Dims:        []int{2},
	Seed:        11,
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.Find(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := experiments.RunAndRender(e, benchScale, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per figure of the paper's evaluation (Section VI).

func BenchmarkFig06Training(b *testing.B)         { benchExperiment(b, "fig06") }
func BenchmarkFig07RMSEvsA(b *testing.B)          { benchExperiment(b, "fig07") }
func BenchmarkFig08RMSEvsV(b *testing.B)          { benchExperiment(b, "fig08") }
func BenchmarkFig09FVU(b *testing.B)              { benchExperiment(b, "fig09") }
func BenchmarkFig10CoD(b *testing.B)              { benchExperiment(b, "fig10") }
func BenchmarkFig11DataValue(b *testing.B)        { benchExperiment(b, "fig11") }
func BenchmarkFig12Scalability(b *testing.B)      { benchExperiment(b, "fig12") }
func BenchmarkFig13RadiusImpact(b *testing.B)     { benchExperiment(b, "fig13") }
func BenchmarkFig14RadiusTrajectory(b *testing.B) { benchExperiment(b, "fig14") }

// Ablation benchmarks for the design choices called out in DESIGN.md.

func BenchmarkAblationLearning(b *testing.B)  { benchExperiment(b, "ablation") }
func BenchmarkGlobalFitBaseline(b *testing.B) { benchExperiment(b, "globalfit") }

// Micro-benchmarks comparing one LLM prediction against one exact in-DBMS
// execution on the same environment — the per-query latency behind the
// paper's Figure 12 speedups.

func setupEnv(b *testing.B, kind experiments.DatasetKind, n int) (*experiments.Env, *core.Model) {
	b.Helper()
	env, err := experiments.NewEnv(kind, 2, n, 3, 0)
	if err != nil {
		b.Fatal(err)
	}
	m, _, _, err := env.TrainDefault(0.25, 1500)
	if err != nil {
		b.Fatal(err)
	}
	return env, m
}

func BenchmarkQ1ModelPrediction(b *testing.B) {
	env, m := setupEnv(b, experiments.R1, 20000)
	q := env.Harness.Gen.Queries(1)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.PredictMean(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQ1ExactExecution20k(b *testing.B) {
	env, _ := setupEnv(b, experiments.R1, 20000)
	q := env.Harness.Gen.Queries(1)[0]
	rq := exec.RadiusQuery{Center: q.Center, Theta: q.Theta}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Harness.Exec.Mean(rq); err != nil && err != exec.ErrEmptySubspace {
			b.Fatal(err)
		}
	}
}

func BenchmarkQ2ModelRegression(b *testing.B) {
	env, m := setupEnv(b, experiments.R1, 20000)
	q := env.Harness.Gen.Queries(1)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Regression(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQ2ExactRegression20k(b *testing.B) {
	env, _ := setupEnv(b, experiments.R1, 20000)
	q := env.Harness.Gen.Queries(1)[0]
	rq := exec.RadiusQuery{Center: q.Center, Theta: q.Theta}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Harness.Exec.Regression(rq); err != nil && err != exec.ErrEmptySubspace {
			b.Fatal(err)
		}
	}
}

func BenchmarkQ2PLRBaseline20k(b *testing.B) {
	env, _ := setupEnv(b, experiments.R1, 20000)
	q := env.Harness.Gen.Queries(1)[0]
	rq := exec.RadiusQuery{Center: q.Center, Theta: q.Theta}
	xs, us, err := env.Harness.Exec.SubspaceValues(rq)
	if err != nil {
		b.Skip("query subspace empty; skipping PLR micro-benchmark")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plr.Fit(xs, us, plr.Options{MaxBasis: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraining1kPairs(b *testing.B) {
	env, err := experiments.NewEnv(experiments.R1, 2, 10000, 5, 0)
	if err != nil {
		b.Fatal(err)
	}
	pairs, err := env.Harness.TrainingPairs(1000)
	if err != nil {
		b.Fatal(err)
	}
	cfg := env.ModelConfig(0.1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := core.NewModel(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Train(pairs); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: overlap-weighted prediction (Algorithm 2) vs. always using the
// single nearest prototype.
func BenchmarkAblationNearestVsWeighted(b *testing.B) {
	env, m := setupEnv(b, experiments.R1, 20000)
	queries := env.Harness.Gen.Queries(256)
	b.Run("weighted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := m.PredictMean(queries[i%len(queries)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("nearest-only", func(b *testing.B) {
		llms := m.LLMs()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			best, bestDist := 0, 1e308
			for k, l := range llms {
				d := q.Distance(l.PrototypeQuery())
				if d < bestDist {
					best, bestDist = k, d
				}
			}
			_ = llms[best].Eval(q.Center, q.Theta)
		}
	})
}

// Index ablation: radius search cost of the three spatial access methods, as
// used by the exact executor.
func BenchmarkIndexRadiusSearch(b *testing.B) {
	env, _ := setupEnv(b, experiments.R1, 20000)
	q := env.Harness.Gen.Queries(1)[0]
	rq := exec.RadiusQuery{Center: q.Center, Theta: q.Theta}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := env.Harness.Exec.Select(rq); err != nil {
			b.Fatal(err)
		}
	}
}

// End-to-end workload benchmark: train + evaluate Q1 on a fresh environment,
// the core loop of every experiment.
func BenchmarkWorkloadTrainAndEvaluate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env, err := experiments.NewEnv(experiments.R1, 2, 3000, int64(i+1), 0)
		if err != nil {
			b.Fatal(err)
		}
		m, _, _, err := env.TrainDefault(0.25, 800)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := env.Harness.EvaluateQ1(m, env.Harness.Gen.Queries(100)); err != nil && err != workload.ErrNoUsableQueries {
			b.Fatal(err)
		}
	}
}
