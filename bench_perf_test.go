package llmq_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"llmq/internal/core"
	"llmq/internal/experiments"
	"llmq/internal/serve"
)

// Performance benchmarks for the serving hot path: batched prediction over
// the bounded worker pool and end-to-end HTTP throughput. The winner-search
// micro-benchmark (store vs the pre-change linear scan on the live []*LLM
// layout) lives in internal/core/store_bench_test.go, where the old layout
// is reachable. scripts/bench.sh runs all of them and records the ns/op
// trajectory in BENCH_<n>.json; see PERFORMANCE.md.

// buildWideModel trains a model whose prototype set reaches the given size
// at the given input dimensionality, by streaming random pairs with a
// vigilance small enough that the query space packs that many prototypes
// (but of the same order as the prototype spacing, the regime the grid index
// is designed for).
func buildWideModel(tb testing.TB, dim, protos int) *core.Model {
	tb.Helper()
	cfg := core.DefaultConfig(dim)
	cfg.Vigilance = 0.03
	if dim > 3 {
		// Random points in a high-dimensional unit box are mutually distant,
		// so a moderate vigilance already spawns on almost every pair.
		cfg.Vigilance = 0.25
	}
	cfg.Gamma = 1e-12
	cfg.MinGammaSteps = 1 << 30
	m, err := core.NewModel(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 100*protos && m.K() < protos; i++ {
		q, err := core.NewQuery(randomCenter(rng, dim), 0.05+0.1*rng.Float64())
		if err != nil {
			tb.Fatal(err)
		}
		if _, err := m.Observe(q, rng.NormFloat64()); err != nil {
			tb.Fatal(err)
		}
	}
	if m.K() < protos {
		tb.Fatalf("expected %d prototypes, got %d", protos, m.K())
	}
	// Absorb a few update rounds so every prototype carries trained RLS
	// state, as a converged serving model would (this is what fragments the
	// pre-change []*LLM layout: each update lazily allocates the per-LLM
	// inverse-covariance matrix between the prototype vectors).
	llms := m.LLMs()
	for round := 0; round < 3; round++ {
		for _, l := range llms {
			q := l.PrototypeQuery()
			if _, err := m.Observe(q, rng.NormFloat64()); err != nil {
				tb.Fatal(err)
			}
		}
	}
	return m
}

func randomCenter(rng *rand.Rand, dim int) []float64 {
	c := make([]float64, dim)
	for j := range c {
		c[j] = rng.Float64()
	}
	return c
}

func benchQueries(dim, n int) []core.Query {
	rng := rand.New(rand.NewSource(7))
	qs := make([]core.Query, n)
	for i := range qs {
		q, _ := core.NewQuery(randomCenter(rng, dim), 0.05+0.1*rng.Float64())
		qs[i] = q
	}
	return qs
}

// BenchmarkPredictBatch measures Q1 batch prediction throughput: the
// sequential loop vs the bounded worker pool on the same 1024 queries over a
// K≈1000 model. ns/op is per batch; the parallel variant should approach
// sequential/GOMAXPROCS.
func BenchmarkPredictBatch(b *testing.B) {
	const dim = 2
	m := buildWideModel(b, dim, 1000)
	queries := benchQueries(dim, 1024)
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				if _, err := m.PredictMean(q); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := m.PredictBatch(queries); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Logf("GOMAXPROCS=%d", runtime.GOMAXPROCS(0))
}

// BenchmarkServeThroughput measures end-to-end HTTP serving of APPROX mean
// statements — JSON decode, SQL parse, model prediction, JSON encode — with
// the client side driven from all cores (RunParallel), the regime the
// concurrent-read model unlocks.
// BenchmarkServeOverload measures the overload cost model of the admission
// layer: a closed loop of concurrent clients at 1×, 4× and 10× the query
// admission capacity drives exact batch sheets end to end. ns/op is the
// cost per attempted sheet; the reported p50-ns/p99-ns metrics are the
// latency distribution of the sheets that were ADMITTED (sheds answer in
// microseconds and would mask the tail), and shed/req is the fraction the
// server refused with 429/503. The resilience contract in numbers: p99 of
// admitted work stays flat as offered load grows, and the overflow moves
// into shed/req instead of the latency tail.
func BenchmarkServeOverload(b *testing.B) {
	env, m := setupEnv(b, experiments.R1, 20000)
	// Capacity 1, not the production default: on a small-core runner the Go
	// scheduler serializes an in-process closed loop well below a multi-slot
	// capacity, so a wider budget never saturates and the benchmark would
	// measure scheduler contention instead of the admission layer.
	const capacity = 1
	s, err := serve.New(env.Harness.Exec, m, serve.WithLimits(serve.Limits{
		QueryConcurrency: capacity,
		AdmitWait:        2 * time.Millisecond,
		QueryTimeout:     10 * time.Second,
	}))
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	// One request is a sheet of wide exact scans (most of the 20k-row
	// relation per statement), so its service time is an order of magnitude
	// past the 2ms admission budget: single sub-millisecond statements drain
	// the FIFO queue faster than a timed-out waiter can run its shed path,
	// and the semaphore's grant-beats-timeout rule would admit everything.
	var sheet serve.BatchRequest
	for i := 0; i < 32; i++ {
		sheet.SQL = append(sheet.SQL, "SELECT AVG(u) FROM r1 WITHIN 0.45 OF (0.5, 0.5)")
	}
	body, err := json.Marshal(sheet)
	if err != nil {
		b.Fatal(err)
	}
	for _, mult := range []int{1, 4, 10} {
		b.Run(fmt.Sprintf("load=%dx", mult), func(b *testing.B) {
			workers := mult * capacity
			// A connection pool as wide as the worker crowd: the default
			// two idle conns per host would serialize the offered load on
			// the client side and hide the server's admission behaviour.
			tr := &http.Transport{MaxIdleConnsPerHost: workers}
			defer tr.CloseIdleConnections()
			client := &http.Client{Transport: tr}
			lat := make([][]time.Duration, workers)
			var next, shed atomic.Int64
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for next.Add(1) <= int64(b.N) {
						start := time.Now()
						resp, err := client.Post(ts.URL+"/query/batch", "application/json", bytes.NewReader(body))
						if err != nil {
							b.Error(err)
							return
						}
						switch resp.StatusCode {
						case http.StatusOK:
							// A 200 sheet can still be a refusal: under
							// brownout every EXACT item is answered with a
							// cheap per-item "browned out" error instead of a
							// scan. Count those sheets as sheds, not latency
							// samples, or overload would look like a speedup.
							browned := false
							_, serr := serve.ReadBatchStream(resp.Body, func(f serve.BatchFrame) error {
								if *f.Index == 0 && f.Error != "" {
									browned = true
								}
								return nil
							})
							if serr != nil {
								b.Error(serr)
							} else if browned {
								shed.Add(1)
							} else {
								lat[w] = append(lat[w], time.Since(start))
							}
						case http.StatusTooManyRequests, http.StatusServiceUnavailable:
							shed.Add(1)
						default:
							b.Errorf("status %d", resp.StatusCode)
						}
						_, _ = io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}(w)
			}
			wg.Wait()
			b.StopTimer()
			var all []time.Duration
			for _, l := range lat {
				all = append(all, l...)
			}
			if len(all) > 0 {
				sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
				b.ReportMetric(float64(all[len(all)*50/100]), "p50-ns")
				b.ReportMetric(float64(all[min(len(all)-1, len(all)*99/100)]), "p99-ns")
			}
			b.ReportMetric(float64(shed.Load())/float64(b.N), "shed/req")
		})
	}
}

// BenchmarkServeOverloadOpenLoop is the open-loop variant of
// BenchmarkServeOverload: requests arrive on a fixed schedule regardless of
// how fast earlier ones complete, the way real traffic does. A closed loop
// self-throttles — a slow server slows its own clients, hiding queueing
// collapse — so the open loop is the one that shows coordinated-omission-free
// tails. The benchmark probes the base service time of one sheet, then
// offers arrivals at 0.5× and 2× the implied capacity; p50-ns/p99-ns cover
// the admitted sheets, shed/req the refusals. At 0.5× the shed rate should
// be ~0 and the tail near the base service time; at 2× the overflow must
// move into shed/req while the admitted tail stays bounded.
func BenchmarkServeOverloadOpenLoop(b *testing.B) {
	env, m := setupEnv(b, experiments.R1, 20000)
	const capacity = 1 // see BenchmarkServeOverload on why not the default
	s, err := serve.New(env.Harness.Exec, m, serve.WithLimits(serve.Limits{
		QueryConcurrency: capacity,
		AdmitWait:        2 * time.Millisecond,
		QueryTimeout:     10 * time.Second,
	}))
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	var sheet serve.BatchRequest
	for i := 0; i < 32; i++ {
		sheet.SQL = append(sheet.SQL, "SELECT AVG(u) FROM r1 WITHIN 0.45 OF (0.5, 0.5)")
	}
	body, err := json.Marshal(sheet)
	if err != nil {
		b.Fatal(err)
	}
	post := func(client *http.Client) (admitted bool, d time.Duration, err error) {
		start := time.Now()
		resp, err := client.Post(ts.URL+"/query/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			return false, 0, err
		}
		defer func() {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
		switch resp.StatusCode {
		case http.StatusOK:
			browned := false
			if _, err := serve.ReadBatchStream(resp.Body, func(f serve.BatchFrame) error {
				if *f.Index == 0 && f.Error != "" {
					browned = true
				}
				return nil
			}); err != nil {
				return false, 0, err
			}
			if browned {
				return false, 0, nil // browned-out sheet = shed
			}
			return true, time.Since(start), nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			return false, 0, nil
		default:
			return false, 0, fmt.Errorf("status %d", resp.StatusCode)
		}
	}
	// Probe the unloaded service time of one sheet; the arrival schedules
	// below are fractions of the implied capacity 1/base.
	probe := &http.Client{}
	base := time.Duration(1 << 62)
	for i := 0; i < 3; i++ {
		admitted, d, err := post(probe)
		if err != nil {
			b.Fatal(err)
		}
		if admitted && d < base {
			base = d
		}
	}
	if base == time.Duration(1<<62) {
		b.Fatal("probe sheets were all shed on an idle server")
	}
	for _, tc := range []struct {
		name string
		rate float64 // offered load as a multiple of 1/base
	}{{"rate=0.5x", 0.5}, {"rate=2x", 2}} {
		b.Run(tc.name, func(b *testing.B) {
			interval := time.Duration(float64(base) / tc.rate)
			// Bound in-flight arrivals: past this the client machine itself
			// is the bottleneck, and an unbounded goroutine pile-up at 2×
			// would measure allocator pressure, not the server. An arrival
			// that cannot start because the bound is full is a shed — the
			// server's queue already overflowed onto the client.
			inflight := make(chan struct{}, 512)
			tr := &http.Transport{MaxIdleConnsPerHost: 64}
			defer tr.CloseIdleConnections()
			client := &http.Client{Transport: tr}
			var mu sync.Mutex
			var all []time.Duration
			var shed atomic.Int64
			var wg sync.WaitGroup
			b.ResetTimer()
			tick := time.NewTicker(interval)
			for i := 0; i < b.N; i++ {
				<-tick.C // fixed schedule: fire whether or not earlier sheets returned
				select {
				case inflight <- struct{}{}:
				default:
					shed.Add(1)
					continue
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer func() { <-inflight }()
					admitted, d, err := post(client)
					if err != nil {
						b.Error(err)
						return
					}
					if !admitted {
						shed.Add(1)
						return
					}
					mu.Lock()
					all = append(all, d)
					mu.Unlock()
				}()
			}
			tick.Stop()
			wg.Wait()
			b.StopTimer()
			if len(all) > 0 {
				sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
				b.ReportMetric(float64(all[len(all)*50/100]), "p50-ns")
				b.ReportMetric(float64(all[min(len(all)-1, len(all)*99/100)]), "p99-ns")
			}
			b.ReportMetric(float64(shed.Load())/float64(b.N), "shed/req")
		})
	}
}

// BenchmarkServeBatching measures the /query micro-batcher on hot-spot
// traffic: a closed loop of 32 clients hammering the same wide EXACT scan,
// with coalescing off vs a 1ms batching window. This is the workload the
// batcher is built for — concurrent duplicates collapse to one evaluation
// per sheet over one pinned read surface, so the batched run pays roughly
// one relation scan per sheet instead of one per request. ns/op is the cost
// per request; p50-ns/p99-ns the client-observed latency distribution.
func BenchmarkServeBatching(b *testing.B) {
	env, m := setupEnv(b, experiments.R1, 20000)
	body := []byte(`{"sql": "SELECT AVG(u) FROM r1 WITHIN 0.45 OF (0.5, 0.5)"}`)
	for _, tc := range []struct {
		name   string
		window time.Duration
	}{{"batch=off", 0}, {"batch=on", time.Millisecond}} {
		b.Run(tc.name, func(b *testing.B) {
			s, err := serve.New(env.Harness.Exec, m, serve.WithLimits(serve.Limits{
				// Wide enough that admission never caps the sheet the
				// batcher can coalesce; both sides get the same budget.
				QueryConcurrency: 64,
				QueryTimeout:     10 * time.Second,
				BatchWindow:      tc.window,
			}))
			if err != nil {
				b.Fatal(err)
			}
			ts := httptest.NewServer(s)
			defer ts.Close()
			const workers = 32
			tr := &http.Transport{MaxIdleConnsPerHost: workers}
			defer tr.CloseIdleConnections()
			client := &http.Client{Transport: tr}
			lat := make([][]time.Duration, workers)
			var next atomic.Int64
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for next.Add(1) <= int64(b.N) {
						start := time.Now()
						resp, err := client.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
						if err != nil {
							b.Error(err)
							return
						}
						_, _ = io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						if resp.StatusCode != http.StatusOK {
							b.Errorf("status %d", resp.StatusCode)
							return
						}
						lat[w] = append(lat[w], time.Since(start))
					}
				}(w)
			}
			wg.Wait()
			b.StopTimer()
			var all []time.Duration
			for _, l := range lat {
				all = append(all, l...)
			}
			if len(all) > 0 {
				sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
				b.ReportMetric(float64(all[len(all)*50/100]), "p50-ns")
				b.ReportMetric(float64(all[min(len(all)-1, len(all)*99/100)]), "p99-ns")
			}
		})
	}
}

// BenchmarkServeBatchingOpenLoop is the headline number of the micro-batcher:
// open-loop arrivals of the hot statement at 2× the probed unbatched capacity,
// batched vs unbatched. Unbatched, the server is past saturation — the
// overflow must go somewhere, so it shows up as shed/req and a queueing tail
// on the admitted requests. Batched, duplicates collapse and the effective
// per-request cost drops well below the arrival interval, so the same
// offered load is comfortably inside capacity: shed/req collapses toward 0
// and p99-ns lands near the batching window plus one evaluation.
func BenchmarkServeBatchingOpenLoop(b *testing.B) {
	env, m := setupEnv(b, experiments.R1, 20000)
	body := []byte(`{"sql": "SELECT AVG(u) FROM r1 WITHIN 0.45 OF (0.5, 0.5)"}`)
	mk := func(window time.Duration) *httptest.Server {
		s, err := serve.New(env.Harness.Exec, m, serve.WithLimits(serve.Limits{
			QueryConcurrency: 64,
			AdmitWait:        5 * time.Millisecond,
			QueryTimeout:     10 * time.Second,
			BatchWindow:      window,
		}))
		if err != nil {
			b.Fatal(err)
		}
		return httptest.NewServer(s)
	}
	post := func(client *http.Client, url string) (admitted bool, d time.Duration, err error) {
		start := time.Now()
		resp, err := client.Post(url+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			return false, 0, err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			return true, time.Since(start), nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return false, 0, nil
		default:
			return false, 0, fmt.Errorf("status %d", resp.StatusCode)
		}
	}
	// Probe the unloaded, unbatched service time of the hot statement; the
	// arrival schedule below offers 2× the implied capacity to BOTH variants,
	// so the only difference between the sub-benchmarks is coalescing.
	tsProbe := mk(0)
	probe := &http.Client{}
	base := time.Duration(1 << 62)
	for i := 0; i < 5; i++ {
		admitted, d, err := post(probe, tsProbe.URL)
		if err != nil {
			b.Fatal(err)
		}
		if admitted && d < base {
			base = d
		}
	}
	tsProbe.Close()
	if base == time.Duration(1<<62) {
		b.Fatal("probe queries were all shed on an idle server")
	}
	interval := base / 2 // 2× the probed capacity
	for _, tc := range []struct {
		name   string
		window time.Duration
	}{{"batch=off", 0}, {"batch=on", time.Millisecond}} {
		b.Run(tc.name, func(b *testing.B) {
			ts := mk(tc.window)
			defer ts.Close()
			inflight := make(chan struct{}, 512) // see BenchmarkServeOverloadOpenLoop
			tr := &http.Transport{MaxIdleConnsPerHost: 64}
			defer tr.CloseIdleConnections()
			client := &http.Client{Transport: tr}
			var mu sync.Mutex
			var all []time.Duration
			var shed atomic.Int64
			var wg sync.WaitGroup
			b.ResetTimer()
			tick := time.NewTicker(interval)
			for i := 0; i < b.N; i++ {
				<-tick.C
				select {
				case inflight <- struct{}{}:
				default:
					shed.Add(1)
					continue
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer func() { <-inflight }()
					admitted, d, err := post(client, ts.URL)
					if err != nil {
						b.Error(err)
						return
					}
					if !admitted {
						shed.Add(1)
						return
					}
					mu.Lock()
					all = append(all, d)
					mu.Unlock()
				}()
			}
			tick.Stop()
			wg.Wait()
			b.StopTimer()
			if len(all) > 0 {
				sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
				b.ReportMetric(float64(all[len(all)*50/100]), "p50-ns")
				b.ReportMetric(float64(all[min(len(all)-1, len(all)*99/100)]), "p99-ns")
			}
			b.ReportMetric(float64(shed.Load())/float64(b.N), "shed/req")
		})
	}
}

func BenchmarkServeThroughput(b *testing.B) {
	env, m := setupEnv(b, experiments.R1, 20000)
	s, err := serve.New(env.Harness.Exec, m)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	body := []byte(`{"sql": "SELECT APPROX AVG(u) FROM r1 WITHIN 0.15 OF (0.5, 0.5)"}`)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			var qr serve.QueryResponse
			if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || qr.Mean == nil {
				b.Fatalf("status %d, body %+v", resp.StatusCode, qr)
			}
		}
	})
}
